"""The system call table and implementations.

Numbers follow the Linux i386 table where a call exists there; the
handful of OpenBSD-flavoured calls the paper's Table 2 mentions
(``__syscall``, ``getdirentries``, ``fstatfs``, ``sysconf``) get stable
numbers of our own.  All calls use the Linux ABI convention: the result
is a non-negative value on success and ``-errno`` on failure.

Handlers receive a :class:`SyscallContext` and are responsible for
reading pointer arguments out of guest memory (raising ``EFAULT`` on
bad pointers, as a real kernel's ``copy_from_user`` would).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable

from repro.cpu.memory import MemoryFault
from repro.cpu.vm import VM, ProcessExit
from repro.kernel.errors import Errno
from repro.kernel.process import (
    O_ACCMODE,
    O_APPEND,
    O_CREAT,
    O_EXCL,
    O_TRUNC,
    FileDescription,
    Process,
)
from repro.kernel.net import (
    AF_INET,
    AF_UNIX,
    SHUT_RD,
    SHUT_RDWR,
    SHUT_WR,
    SOCK_DGRAM,
    SOCK_STREAM,
    SendOnShutdown,
)
from repro.kernel.sched.blocking import WouldBlock
from repro.kernel.sched.pipe import BrokenPipe, Pipe
from repro.kernel.vfs import VfsError

#: The canonical syscall name -> number table of the simulated OS.
SYSCALL_NUMBERS: dict[str, int] = {
    "exit": 1,
    "fork": 2,
    "read": 3,
    "write": 4,
    "open": 5,
    "close": 6,
    "unlink": 10,
    "execve": 11,
    "chdir": 12,
    "time": 13,
    "chmod": 15,
    "lseek": 19,
    "getpid": 20,
    "getuid": 24,
    "access": 33,
    "kill": 37,
    "rename": 38,
    "mkdir": 39,
    "rmdir": 40,
    "dup": 41,
    "pipe": 42,
    "brk": 45,
    "geteuid": 49,
    "ioctl": 54,
    "fcntl": 55,
    "umask": 60,
    "dup2": 63,
    "getppid": 64,
    "sigaction": 67,
    "gettimeofday": 78,
    "symlink": 83,
    "readlink": 85,
    "mmap": 90,
    "munmap": 91,
    "socket": 97,
    "fstatfs": 100,
    "stat": 106,
    "fstat": 108,
    "uname": 122,
    "sendto": 133,
    "writev": 146,
    "nanosleep": 162,
    "getdirentries": 196,
    "__syscall": 198,
    "sysconf": 199,
    "madvise": 219,
    # Additional common Unix calls (simple semantics, present so that
    # large program profiles — screen needs 67 distinct calls — have a
    # realistic namespace to draw from).
    "link": 9,
    "alarm": 27,
    "utime": 30,
    "sync": 36,
    "times": 43,
    "getgid": 47,
    "getegid": 50,
    "setuid": 23,
    "setgid": 46,
    "getpgrp": 65,
    "setsid": 66,
    "sigprocmask": 126,
    "getrlimit": 76,
    "setrlimit": 75,
    "getrusage": 77,
    "truncate": 92,
    "ftruncate": 93,
    "fchmod": 94,
    "fchown": 95,
    "chown": 182,
    "getcwd": 183,
    "fchdir": 300,
    "flock": 143,
    "fsync": 118,
    "select": 142,
    "poll": 168,
    "mprotect": 125,
    "getpriority": 96,
    "setpriority": 98,
    "statfs": 99,
    "getgroups": 80,
    "sched_yield": 158,
    "wait4": 114,
    "mlock": 150,
    "munlock": 151,
    "readv": 145,
    "spawn": 400,
    # Loopback networking (kernel/net/).  Stable numbers of our own in
    # the 4xx space: the Linux i386 table multiplexes these behind
    # socketcall(102), which the paper's per-site policies could not
    # distinguish — separate numbers give each call its own policy row.
    "bind": 401,
    "listen": 402,
    "accept": 403,
    "connect": 404,
    "send": 405,
    "recv": 406,
    "recvfrom": 407,
    "shutdown": 408,
}

SYSCALL_NAMES: dict[int, str] = {num: name for name, num in SYSCALL_NUMBERS.items()}
assert len(SYSCALL_NAMES) == len(SYSCALL_NUMBERS), "duplicate syscall numbers"

SEEK_SET, SEEK_CUR, SEEK_END = 0, 1, 2
F_DUPFD, F_GETFL, F_SETFL = 0, 3, 4

MAX_RW = 1 << 20  # single-call transfer cap, a sanity bound
MMAP_BASE = 0x40000000
PAGE = 0x1000


@dataclass
class SyscallContext:
    """Everything a handler needs, bundled."""

    kernel: "Kernel"  # noqa: F821 - forward ref, avoids an import cycle
    process: Process
    vm: VM
    name: str
    args: tuple[int, ...]
    #: Bytes moved for per-byte cost accounting (read/write family).
    transferred: int = 0
    #: True when the scheduler is re-running a dispatch that blocked;
    #: handlers with once-only side effects (yield, tracing) key on it.
    retry: bool = False

    # -- guest memory helpers -------------------------------------------

    def read_string(self, address: int, max_len: int = 4096) -> bytes:
        try:
            return self.vm.memory.read_cstring(address, max_len, force=True)
        except MemoryFault:
            raise VfsError(Errno.EFAULT) from None

    def read_path(self, address: int) -> str:
        return self.read_string(address).decode("utf-8", "surrogateescape")

    def read_buffer(self, address: int, size: int) -> bytes:
        try:
            return self.vm.memory.read(address, size, force=True)
        except MemoryFault:
            raise VfsError(Errno.EFAULT) from None

    def write_buffer(self, address: int, data: bytes) -> None:
        # Memory.write bumps Region.version, which is what the VM's
        # decode cache and the threaded engine's block guards key on —
        # kernel writes into guest code invalidate translations without
        # any explicit notification.
        try:
            self.vm.memory.write(address, data, force=True)
        except MemoryFault:
            raise VfsError(Errno.EFAULT) from None


Handler = Callable[[SyscallContext], int]
_HANDLERS: dict[str, Handler] = {}


def syscall(name: str) -> Callable[[Handler], Handler]:
    def register(handler: Handler) -> Handler:
        if name in _HANDLERS:
            raise ValueError(f"duplicate syscall handler {name!r}")
        _HANDLERS[name] = handler
        return handler

    return register


def dispatch(ctx: SyscallContext) -> int:
    """Run the handler for ``ctx.name``; map errors to -errno."""
    tracer = getattr(ctx.kernel, "tracer", None)
    if tracer is not None and not ctx.retry:
        tracer.record(ctx)
    handler = _HANDLERS.get(ctx.name)
    if handler is None:
        return Errno.ENOSYS.as_result()
    try:
        result = handler(ctx)
    except VfsError as err:
        return err.errno.as_result()
    return result & 0xFFFFFFFF


# ---------------------------------------------------------------------------
# process & identity
# ---------------------------------------------------------------------------


@syscall("exit")
def _exit(ctx: SyscallContext) -> int:
    raise ProcessExit(ctx.args[0] & 0xFF)


@syscall("getpid")
def _getpid(ctx: SyscallContext) -> int:
    return ctx.process.pid


@syscall("fork")
def _fork(ctx: SyscallContext) -> int:
    """Real fork — only meaningful under a scheduler (there is no one
    to run the child otherwise); synchronous mode reports EAGAIN like a
    kernel that is out of processes."""
    if not ctx.kernel.scheduler_owns(ctx.process):
        return Errno.EAGAIN.as_result()
    return ctx.kernel.fork_process(ctx)


@syscall("getppid")
def _getppid(ctx: SyscallContext) -> int:
    scheduler = ctx.kernel._scheduler
    if scheduler is not None:
        task = scheduler.tasks.get(ctx.process.pid)
        if task is not None and task.parent_pid is not None:
            return task.parent_pid
    return 1


@syscall("getuid")
def _getuid(ctx: SyscallContext) -> int:
    return 1000


@syscall("geteuid")
def _geteuid(ctx: SyscallContext) -> int:
    return 1000


@syscall("umask")
def _umask(ctx: SyscallContext) -> int:
    return 0o022


@syscall("kill")
def _kill(ctx: SyscallContext) -> int:
    pid, sig = ctx.args[0], ctx.args[1]
    if pid == ctx.process.pid:
        if sig == 0:
            return 0
        raise ProcessExit(128 + (sig & 0x7F), killed=True, reason=f"signal {sig}")
    if ctx.kernel.scheduler_owns(ctx.process):
        # Cross-process delivery: the target is terminated at its next
        # schedule point (or wake poll, if blocked).
        scheduler = ctx.kernel._scheduler
        if sig == 0:
            target = scheduler.tasks.get(pid)
            if target is not None and target.alive:
                return 0
            return Errno.ESRCH.as_result()
        if scheduler.post_signal(pid, sig):
            return 0
    return Errno.ESRCH.as_result()


@syscall("sigaction")
def _sigaction(ctx: SyscallContext) -> int:
    signum, handler_addr = ctx.args[0], ctx.args[1]
    if not 1 <= signum <= 64:
        return Errno.EINVAL.as_result()
    ctx.process.signal_handlers[signum] = handler_addr
    return 0


# ---------------------------------------------------------------------------
# time
# ---------------------------------------------------------------------------


@syscall("time")
def _time(ctx: SyscallContext) -> int:
    now = ctx.kernel.current_time(ctx.vm)
    if ctx.args and ctx.args[0]:
        ctx.write_buffer(ctx.args[0], struct.pack("<I", now))
    return now


@syscall("gettimeofday")
def _gettimeofday(ctx: SyscallContext) -> int:
    seconds, micros = ctx.kernel.current_timeofday(ctx.vm)
    if ctx.args[0]:
        ctx.write_buffer(ctx.args[0], struct.pack("<II", seconds, micros))
    return 0


@syscall("nanosleep")
def _nanosleep(ctx: SyscallContext) -> int:
    if not ctx.args[0]:
        return Errno.EFAULT.as_result()
    # The request is honoured by charging the requested time as cycles
    # (capped so a hostile timespec cannot stall a benchmark run).
    raw = ctx.read_buffer(ctx.args[0], 8)
    seconds, nanos = struct.unpack("<II", raw)
    cycles = min(seconds * ctx.kernel.cycles_per_second + nanos, 10_000_000)
    ctx.vm.cycles += cycles
    return 0


# ---------------------------------------------------------------------------
# files
# ---------------------------------------------------------------------------


@syscall("open")
def _open(ctx: SyscallContext) -> int:
    path = ctx.read_path(ctx.args[0])
    flags = ctx.args[1]
    mode = ctx.args[2] if len(ctx.args) > 2 else 0o644
    vfs = ctx.kernel.vfs
    process = ctx.process
    if flags & O_CREAT:
        inode = vfs.create_file(
            path, mode, cwd=process.cwd, exclusive=bool(flags & O_EXCL)
        )
    else:
        inode = vfs.resolve(path, cwd=process.cwd)
    if inode.is_dir and flags & O_ACCMODE != 0:
        return Errno.EISDIR.as_result()
    if flags & O_TRUNC and inode.is_file:
        inode.data.clear()
    description = FileDescription(
        inode=inode,
        flags=flags,
        offset=len(inode.data) if (flags & O_APPEND and inode.is_file) else 0,
        path=vfs.normalize(path, process.cwd),
        kind="dir" if inode.is_dir else "file",
    )
    return process.allocate_fd(description)


@syscall("close")
def _close(ctx: SyscallContext) -> int:
    ctx.process.close_fd(ctx.args[0])
    return 0


@syscall("read")
def _read(ctx: SyscallContext) -> int:
    fd, buf, count = ctx.args[0], ctx.args[1], min(ctx.args[2], MAX_RW)
    description = ctx.process.fd(fd)
    if not description.readable:
        return Errno.EBADF.as_result()
    if description.kind == "console":
        data = ctx.process.stdin[
            ctx.process.stdin_offset : ctx.process.stdin_offset + count
        ]
        ctx.process.stdin_offset += len(data)
    elif description.kind == "socket":
        sock = description.sock
        if sock is not None and sock.conn is not None:
            data = sock.conn.recv(sock.side, count, _sock_blocking(ctx))
        elif (
            sock is not None
            and sock.type == SOCK_DGRAM
            and sock.address is not None
        ):
            _, data = ctx.kernel.net.recv_dgram(sock, count, _sock_blocking(ctx))
        else:
            data = b""  # unconnected legacy sink: immediate EOF
    elif description.kind == "pipe":
        assert description.pipe is not None
        if count == 0:
            data = b""
        else:
            # Blocking read under a scheduler; the synchronous fallback
            # (0 bytes) matches the old file-backed pipe semantics.
            data = description.pipe.read(
                count, blocking=ctx.kernel.scheduler_owns(ctx.process)
            )
    else:
        inode = description.inode
        assert inode is not None
        if inode.is_dir:
            return Errno.EISDIR.as_result()
        data = bytes(inode.data[description.offset : description.offset + count])
        description.offset += len(data)
    if data:
        ctx.write_buffer(buf, data)
    ctx.transferred = len(data)
    return len(data)


@syscall("write")
def _write(ctx: SyscallContext) -> int:
    fd, buf, count = ctx.args[0], ctx.args[1], min(ctx.args[2], MAX_RW)
    data = ctx.read_buffer(buf, count)
    return _do_write(ctx, fd, data)


def _do_write(ctx: SyscallContext, fd: int, data: bytes) -> int:
    description = ctx.process.fd(fd)
    if not description.writable:
        return Errno.EBADF.as_result()
    if description.kind == "console":
        target = ctx.process.stdout if fd != 2 else ctx.process.stderr
        target.extend(data)
    elif description.kind == "socket":
        sock = description.sock
        if sock is not None and sock.conn is not None:
            return _conn_send(ctx, sock, data)
        ctx.process.network.append(data)
    elif description.kind == "pipe":
        assert description.pipe is not None
        try:
            written = description.pipe.write(
                data, blocking=ctx.kernel.scheduler_owns(ctx.process)
            )
        except BrokenPipe:
            return Errno.EPIPE.as_result()
        ctx.transferred = written
        return written
    else:
        inode = description.inode
        assert inode is not None
        end = description.offset + len(data)
        if end > len(inode.data):
            inode.data.extend(bytes(end - len(inode.data)))
        inode.data[description.offset : end] = data
        description.offset = end
    ctx.transferred = len(data)
    return len(data)


@syscall("writev")
def _writev(ctx: SyscallContext) -> int:
    fd, iov, iovcnt = ctx.args[0], ctx.args[1], ctx.args[2]
    if iovcnt > 64:
        return Errno.EINVAL.as_result()
    gathered = bytearray()
    for i in range(iovcnt):
        base, length = struct.unpack("<II", ctx.read_buffer(iov + 8 * i, 8))
        gathered += ctx.read_buffer(base, min(length, MAX_RW))
    return _do_write(ctx, fd, bytes(gathered))


@syscall("lseek")
def _lseek(ctx: SyscallContext) -> int:
    fd, offset, whence = ctx.args[0], ctx.args[1], ctx.args[2]
    description = ctx.process.fd(fd)
    if description.kind != "file" or description.inode is None:
        return Errno.ESPIPE.as_result()
    signed = offset - 0x1_0000_0000 if offset & 0x8000_0000 else offset
    if whence == SEEK_SET:
        new = signed
    elif whence == SEEK_CUR:
        new = description.offset + signed
    elif whence == SEEK_END:
        new = len(description.inode.data) + signed
    else:
        return Errno.EINVAL.as_result()
    if new < 0:
        return Errno.EINVAL.as_result()
    description.offset = new
    return new


@syscall("dup")
def _dup(ctx: SyscallContext) -> int:
    description = ctx.process.fd(ctx.args[0])
    return ctx.process.allocate_fd(description.dup())


@syscall("dup2")
def _dup2(ctx: SyscallContext) -> int:
    old, new = ctx.args[0], ctx.args[1]
    description = ctx.process.fd(old)
    if old == new:
        return new
    if new in ctx.process.fds:
        # The implicit close of the displaced fd must release its pipe
        # endpoint (POSIX dup2 semantics).
        ctx.process.close_fd(new)
    ctx.process.fds[new] = description.dup()
    return new


@syscall("fcntl")
def _fcntl(ctx: SyscallContext) -> int:
    fd, cmd = ctx.args[0], ctx.args[1]
    description = ctx.process.fd(fd)
    if cmd == F_GETFL:
        return description.flags
    if cmd == F_SETFL:
        description.flags = (description.flags & O_ACCMODE) | (
            ctx.args[2] & ~O_ACCMODE
        )
        return 0
    if cmd == F_DUPFD:
        return ctx.process.allocate_fd(description.dup())
    return Errno.EINVAL.as_result()


@syscall("ioctl")
def _ioctl(ctx: SyscallContext) -> int:
    ctx.process.fd(ctx.args[0])  # EBADF check
    return 0


# ---------------------------------------------------------------------------
# namespace
# ---------------------------------------------------------------------------


@syscall("unlink")
def _unlink(ctx: SyscallContext) -> int:
    ctx.kernel.vfs.unlink(ctx.read_path(ctx.args[0]), cwd=ctx.process.cwd)
    return 0


@syscall("mkdir")
def _mkdir(ctx: SyscallContext) -> int:
    ctx.kernel.vfs.mkdir(
        ctx.read_path(ctx.args[0]), ctx.args[1] & 0o7777, cwd=ctx.process.cwd
    )
    return 0


@syscall("rmdir")
def _rmdir(ctx: SyscallContext) -> int:
    ctx.kernel.vfs.rmdir(ctx.read_path(ctx.args[0]), cwd=ctx.process.cwd)
    return 0


@syscall("rename")
def _rename(ctx: SyscallContext) -> int:
    ctx.kernel.vfs.rename(
        ctx.read_path(ctx.args[0]), ctx.read_path(ctx.args[1]), cwd=ctx.process.cwd
    )
    return 0


@syscall("chdir")
def _chdir(ctx: SyscallContext) -> int:
    path = ctx.read_path(ctx.args[0])
    inode = ctx.kernel.vfs.resolve(path, cwd=ctx.process.cwd)
    if not inode.is_dir:
        return Errno.ENOTDIR.as_result()
    ctx.process.cwd = ctx.kernel.vfs.normalize(path, ctx.process.cwd)
    return 0


@syscall("chmod")
def _chmod(ctx: SyscallContext) -> int:
    ctx.kernel.vfs.chmod(
        ctx.read_path(ctx.args[0]), ctx.args[1] & 0o7777, cwd=ctx.process.cwd
    )
    return 0


@syscall("access")
def _access(ctx: SyscallContext) -> int:
    path = ctx.read_path(ctx.args[0])
    if ctx.kernel.vfs.exists(path, cwd=ctx.process.cwd):
        return 0
    return Errno.ENOENT.as_result()


@syscall("symlink")
def _symlink(ctx: SyscallContext) -> int:
    target = ctx.read_path(ctx.args[0])
    linkpath = ctx.read_path(ctx.args[1])
    ctx.kernel.vfs.symlink(target, linkpath, cwd=ctx.process.cwd)
    return 0


@syscall("readlink")
def _readlink(ctx: SyscallContext) -> int:
    path = ctx.read_path(ctx.args[0])
    buf, size = ctx.args[1], ctx.args[2]
    target = ctx.kernel.vfs.readlink(path, cwd=ctx.process.cwd).encode()
    data = target[:size]
    ctx.write_buffer(buf, data)
    return len(data)


# ---------------------------------------------------------------------------
# metadata
# ---------------------------------------------------------------------------

_STAT_SIZE = 32


def _pack_stat(inode) -> bytes:
    return struct.pack(
        "<IIIIIIII",
        inode.ino,
        inode.file_type_bits | inode.mode,
        inode.size,
        inode.nlink,
        0,
        0,
        0,
        0,
    )


@syscall("stat")
def _stat(ctx: SyscallContext) -> int:
    inode = ctx.kernel.vfs.resolve(ctx.read_path(ctx.args[0]), cwd=ctx.process.cwd)
    ctx.write_buffer(ctx.args[1], _pack_stat(inode))
    return 0


@syscall("fstat")
def _fstat(ctx: SyscallContext) -> int:
    from repro.kernel.vfs import S_IFCHR, S_IFIFO, S_IFSOCK

    description = ctx.process.fd(ctx.args[0])
    if description.inode is None:
        # Synthesize a stat for inode-less descriptors with an honest
        # file type: S_IFSOCK for sockets, S_IFIFO for kernel pipes,
        # and the historical character device for consoles.
        if description.kind == "socket":
            mode = S_IFSOCK | 0o666
        elif description.kind == "pipe":
            mode = S_IFIFO | 0o600
        else:
            mode = S_IFCHR | 0o666
        ctx.write_buffer(ctx.args[1], struct.pack("<IIIIIIII", 1, mode, 0, 1, 0, 0, 0, 0))
        return 0
    ctx.write_buffer(ctx.args[1], _pack_stat(description.inode))
    return 0


@syscall("fstatfs")
def _fstatfs(ctx: SyscallContext) -> int:
    ctx.process.fd(ctx.args[0])  # EBADF check
    # f_type, f_bsize, f_blocks, f_bfree
    ctx.write_buffer(ctx.args[1], struct.pack("<IIII", 0x53454631, PAGE, 65536, 32768))
    return 0


@syscall("getdirentries")
def _getdirentries(ctx: SyscallContext) -> int:
    fd, buf, nbytes = ctx.args[0], ctx.args[1], ctx.args[2]
    description = ctx.process.fd(fd)
    if description.kind != "dir" or description.inode is None:
        return Errno.ENOTDIR.as_result()
    names = sorted(description.inode.entries)
    out = bytearray()
    index = description.offset
    while index < len(names):
        encoded = names[index].encode() + b"\x00"
        record = struct.pack("<IH", description.inode.entries[names[index]].ino, len(encoded)) + encoded
        if len(out) + len(record) > nbytes:
            break
        out += record
        index += 1
    if index == description.offset and index < len(names):
        return Errno.EINVAL.as_result()  # buffer too small for one entry
    description.offset = index
    ctx.write_buffer(buf, bytes(out))
    ctx.transferred = len(out)
    return len(out)


@syscall("uname")
def _uname(ctx: SyscallContext) -> int:
    fields = [
        b"SVM32",
        ctx.kernel.personality.encode(),
        b"2.4.20-asc",
        b"#1 2005",
        b"svm32",
    ]
    blob = b"".join(name.ljust(32, b"\x00") for name in fields)
    ctx.write_buffer(ctx.args[0], blob)
    return 0


@syscall("sysconf")
def _sysconf(ctx: SyscallContext) -> int:
    known = {0: 4096, 1: 256, 2: 100}  # PAGESIZE, OPEN_MAX, CLK_TCK
    return known.get(ctx.args[0], Errno.EINVAL.as_result())


# ---------------------------------------------------------------------------
# memory
# ---------------------------------------------------------------------------


@syscall("brk")
def _brk(ctx: SyscallContext) -> int:
    request = ctx.args[0]
    process = ctx.process
    if request == 0 or request < process.initial_brk:
        return process.brk
    try:
        ctx.vm.memory.grow_region("[heap]", request - process.initial_brk)
    except (MemoryFault, KeyError):
        return process.brk
    process.brk = request
    return process.brk


@syscall("mmap")
def _mmap(ctx: SyscallContext) -> int:
    length = ctx.args[1]
    fd = ctx.args[4] if len(ctx.args) > 4 else 0xFFFFFFFF
    if length == 0:
        return Errno.EINVAL.as_result()
    size = (length + PAGE - 1) & ~(PAGE - 1)
    base = ctx.kernel.next_mmap_address(ctx.vm, size)
    from repro.cpu.memory import PROT_READ, PROT_WRITE

    region = ctx.vm.memory.map_region(
        base, size, PROT_READ | PROT_WRITE, name=f"[mmap:{base:#x}]"
    )
    if fd != 0xFFFFFFFF and fd < 0x8000_0000:
        description = ctx.process.fd(fd)
        if description.inode is not None and description.inode.is_file:
            content = bytes(description.inode.data[:size])
            region.data[: len(content)] = content
            region.version += 1
    return base


@syscall("munmap")
def _munmap(ctx: SyscallContext) -> int:
    # Regions are leaked rather than unmapped; fine for program lifetimes.
    return 0


@syscall("madvise")
def _madvise(ctx: SyscallContext) -> int:
    return 0


# ---------------------------------------------------------------------------
# sockets (kernel/net/: deterministic loopback stream + datagram stack)
# ---------------------------------------------------------------------------

#: socket() protocol numbers accepted per type (0 = default).
_STREAM_PROTOCOLS = (0, 6)  # IPPROTO_TCP
_DGRAM_PROTOCOLS = (0, 17)  # IPPROTO_UDP


def _sock_of(ctx: SyscallContext, fd: int):
    """The kernel Socket behind ``fd`` (ENOTSOCK for anything else)."""
    description = ctx.process.fd(fd)
    if description.kind != "socket" or description.sock is None:
        raise VfsError(Errno.ENOTSOCK)
    return description.sock


def _sock_blocking(ctx: SyscallContext) -> bool:
    return ctx.kernel.scheduler_owns(ctx.process)


def _read_sockaddr(ctx: SyscallContext, address: int) -> str:
    """Socket addresses are NUL-terminated ASCII strings, so constant
    addresses in ``.rodata`` become installer-authenticated string
    parameters of the bind/connect site (see kernel/net/socket.py)."""
    if address == 0:
        raise VfsError(Errno.EFAULT)
    return ctx.read_string(address, max_len=256).decode("utf-8", "surrogateescape")


def _write_sockaddr(ctx: SyscallContext, addr_out: int, len_out: int, name: str) -> None:
    """Fill an (address, length) output pair, truncating to the guest's
    declared capacity (``*len_out`` on entry, u32)."""
    encoded = name.encode("utf-8", "surrogateescape") + b"\x00"
    if addr_out:
        capacity = len(encoded)
        if len_out:
            (declared,) = struct.unpack("<I", ctx.read_buffer(len_out, 4))
            capacity = min(capacity, declared)
        if capacity:
            ctx.write_buffer(addr_out, encoded[:capacity])
    if len_out:
        ctx.write_buffer(len_out, struct.pack("<I", len(encoded)))


@syscall("socket")
def _socket(ctx: SyscallContext) -> int:
    from repro.kernel.process import O_RDWR

    domain, type_, protocol = ctx.args[0], ctx.args[1], ctx.args[2]
    if domain not in (AF_UNIX, AF_INET):
        return Errno.EAFNOSUPPORT.as_result()
    if type_ == SOCK_STREAM:
        allowed = _STREAM_PROTOCOLS
    elif type_ == SOCK_DGRAM:
        allowed = _DGRAM_PROTOCOLS
    else:
        return Errno.EPROTONOSUPPORT.as_result()
    if protocol not in allowed:
        return Errno.EPROTONOSUPPORT.as_result()
    sock = ctx.kernel.net.create(domain, type_)
    return ctx.process.allocate_fd(
        FileDescription(None, O_RDWR, kind="socket", path="<socket>", sock=sock)
    )


@syscall("bind")
def _bind(ctx: SyscallContext) -> int:
    sock = _sock_of(ctx, ctx.args[0])
    address = _read_sockaddr(ctx, ctx.args[1])
    ctx.kernel.net.bind(sock, address)
    return 0


@syscall("listen")
def _listen(ctx: SyscallContext) -> int:
    sock = _sock_of(ctx, ctx.args[0])
    ctx.kernel.net.listen(sock, ctx.args[1])
    return 0


@syscall("connect")
def _connect(ctx: SyscallContext) -> int:
    sock = _sock_of(ctx, ctx.args[0])
    address = _read_sockaddr(ctx, ctx.args[1])
    rec = ctx.kernel.obs
    if rec.enabled:
        rec.begin("net-connect", "net")
        try:
            ctx.kernel.net.connect(sock, address, _sock_blocking(ctx))
        finally:
            rec.end()
    else:
        ctx.kernel.net.connect(sock, address, _sock_blocking(ctx))
    return 0


@syscall("accept")
def _accept(ctx: SyscallContext) -> int:
    from repro.kernel.process import O_RDWR

    sock = _sock_of(ctx, ctx.args[0])
    rec = ctx.kernel.obs
    if rec.enabled:
        rec.begin("net-accept", "net")
        try:
            child = ctx.kernel.net.accept(sock, _sock_blocking(ctx))
        finally:
            rec.end()
    else:
        child = ctx.kernel.net.accept(sock, _sock_blocking(ctx))
    fd = ctx.process.allocate_fd(
        FileDescription(None, O_RDWR, kind="socket", path="<socket>", sock=child)
    )
    # The peer "name" is the deterministic connection ident — clients
    # are usually unbound, so there is no client address to report.
    _write_sockaddr(ctx, ctx.args[1], ctx.args[2], f"conn:{child.conn.ident}")
    return fd


def _conn_send(ctx: SyscallContext, sock, data: bytes) -> int:
    try:
        written = sock.conn.send(sock.side, data, _sock_blocking(ctx))
    except SendOnShutdown:
        return Errno.EPIPE.as_result()
    ctx.kernel.metrics.inc("net.bytes_sent", written)
    ctx.transferred = written
    return written


@syscall("send")
def _send(ctx: SyscallContext) -> int:
    fd, buf, count = ctx.args[0], ctx.args[1], min(ctx.args[2], MAX_RW)
    sock = _sock_of(ctx, fd)
    data = ctx.read_buffer(buf, count)
    if sock.conn is not None:
        return _conn_send(ctx, sock, data)
    if sock.type == SOCK_DGRAM and sock.peer_address:
        written = ctx.kernel.net.send_dgram(
            sock, sock.peer_address, data, _sock_blocking(ctx)
        )
        ctx.transferred = written
        return written
    return Errno.ENOTCONN.as_result()


@syscall("recv")
def _recv(ctx: SyscallContext) -> int:
    fd, buf, count = ctx.args[0], ctx.args[1], min(ctx.args[2], MAX_RW)
    sock = _sock_of(ctx, fd)
    if sock.conn is not None:
        data = sock.conn.recv(sock.side, count, _sock_blocking(ctx))
    elif sock.type == SOCK_DGRAM and sock.address is not None:
        _, data = ctx.kernel.net.recv_dgram(sock, count, _sock_blocking(ctx))
    else:
        return Errno.ENOTCONN.as_result()
    if data:
        ctx.write_buffer(buf, data)
        ctx.kernel.metrics.inc("net.bytes_received", len(data))
    ctx.transferred = len(data)
    return len(data)


@syscall("sendto")
def _sendto(ctx: SyscallContext) -> int:
    fd, buf, count = ctx.args[0], ctx.args[1], min(ctx.args[2], MAX_RW)
    description = ctx.process.fd(fd)
    if description.kind != "socket":
        return Errno.EINVAL.as_result()
    data = ctx.read_buffer(buf, count)
    sock = description.sock
    if sock is not None:
        if sock.conn is not None:
            # Connected stream: the destination (if any) is ignored.
            return _conn_send(ctx, sock, data)
        dest = ctx.args[4]
        if sock.type == SOCK_DGRAM and (dest or sock.peer_address):
            address = (
                _read_sockaddr(ctx, dest) if dest else sock.peer_address
            )
            written = ctx.kernel.net.send_dgram(
                sock, address, data, _sock_blocking(ctx)
            )
            ctx.transferred = written
            return written
        if sock.type == SOCK_STREAM and dest:
            return Errno.ENOTCONN.as_result()
    # Unconnected, no destination: the pre-net diagnostic sink (bytes
    # land in process.network), kept for the Table 3 profile workloads.
    ctx.process.network.append(data)
    ctx.transferred = len(data)
    return len(data)


@syscall("recvfrom")
def _recvfrom(ctx: SyscallContext) -> int:
    fd, buf, count = ctx.args[0], ctx.args[1], min(ctx.args[2], MAX_RW)
    sock = _sock_of(ctx, fd)
    if sock.conn is not None:
        data = sock.conn.recv(sock.side, count, _sock_blocking(ctx))
        source = sock.peer_address or f"conn:{sock.conn.ident}"
    elif sock.type == SOCK_DGRAM and sock.address is not None:
        source, data = ctx.kernel.net.recv_dgram(sock, count, _sock_blocking(ctx))
    else:
        return Errno.ENOTCONN.as_result()
    if data:
        ctx.write_buffer(buf, data)
        ctx.kernel.metrics.inc("net.bytes_received", len(data))
    _write_sockaddr(ctx, ctx.args[4], ctx.args[5], source)
    ctx.transferred = len(data)
    return len(data)


@syscall("shutdown")
def _shutdown(ctx: SyscallContext) -> int:
    sock = _sock_of(ctx, ctx.args[0])
    how = ctx.args[1]
    if how not in (SHUT_RD, SHUT_WR, SHUT_RDWR):
        return Errno.EINVAL.as_result()
    if sock.conn is None:
        return Errno.ENOTCONN.as_result()
    sock.conn.shutdown(sock.side, how)
    return 0


@syscall("pipe")
def _pipe(ctx: SyscallContext) -> int:
    """A kernel pipe object: FIFO buffer with reference-counted read
    and write endpoints (writer-close EOF, reader-close EPIPE).  The
    fd API is unchanged from the old file-backed fake."""
    from repro.kernel.process import O_RDONLY, O_WRONLY

    channel = Pipe(ident=ctx.kernel.allocate_pipe_ident())
    read_end = FileDescription(None, O_RDONLY, kind="pipe", path="<pipe>", pipe=channel)
    channel.retain(writer=False)
    write_end = FileDescription(None, O_WRONLY, kind="pipe", path="<pipe>", pipe=channel)
    channel.retain(writer=True)
    read_fd = ctx.process.allocate_fd(read_end)
    write_fd = ctx.process.allocate_fd(write_end)
    ctx.write_buffer(ctx.args[0], struct.pack("<II", read_fd, write_fd))
    return 0


# ---------------------------------------------------------------------------
# program execution & indirection
# ---------------------------------------------------------------------------


def _read_argv(ctx: SyscallContext, table: int) -> list:
    """Read a NULL-terminated array of string pointers from the guest."""
    argv = []
    cursor = table
    for _ in range(64):
        try:
            pointer = ctx.vm.memory.read_u32(cursor, force=True)
        except MemoryFault:
            raise VfsError(Errno.EFAULT) from None
        if pointer == 0:
            break
        argv.append(ctx.read_path(pointer))
        cursor += 4
    return argv


@syscall("execve")
def _execve(ctx: SyscallContext) -> int:
    path = ctx.read_path(ctx.args[0])
    argv = _read_argv(ctx, ctx.args[1]) if ctx.args[1] else []
    if ctx.kernel.scheduler_owns(ctx.process):
        # True image replacement: raises ImageReplaced on success, so
        # execve never returns to the old image.
        ctx.kernel.exec_replace(ctx, path, argv)
        raise AssertionError("unreachable")  # pragma: no cover
    status = ctx.kernel.execve(ctx, path, argv)
    # Synchronous mode models "replace the image" by running the new
    # program to completion and exiting the caller with its status.
    raise ProcessExit(status, reason=f"execve {path}")


@syscall("spawn")
def _spawn(ctx: SyscallContext) -> int:
    """posix_spawn-style child execution.  Under a scheduler the child
    runs asynchronously and the pid is returned for wait4 to collect;
    synchronously the child runs to completion and the low byte of its
    exit status is returned (the historical stub semantics).  The
    enforcement-mode rules of execve apply to the target binary."""
    path = ctx.read_path(ctx.args[0])
    argv = _read_argv(ctx, ctx.args[1]) if ctx.args[1] else []
    if ctx.kernel.scheduler_owns(ctx.process):
        return ctx.kernel.spawn_process(ctx, path, argv)
    return ctx.kernel.execve(ctx, path, argv) & 0xFF


@syscall("__syscall")
def ___syscall(ctx: SyscallContext) -> int:
    """OpenBSD-style generic indirect system call: the real syscall
    number is the first argument and the remaining arguments shift
    left.  This is how the OpenBSD personality's libc invokes mmap,
    which is what produces the Table 2 ``__syscall``/``mmap`` policy
    asymmetry."""
    real_number = ctx.args[0]
    real_name = SYSCALL_NAMES.get(real_number)
    if real_name is None or real_name == "__syscall":
        return Errno.ENOSYS.as_result()
    inner = SyscallContext(
        kernel=ctx.kernel,
        process=ctx.process,
        vm=ctx.vm,
        name=real_name,
        args=ctx.args[1:] + (0,),
    )
    result = dispatch(inner)
    ctx.transferred = inner.transferred
    return result


# ---------------------------------------------------------------------------
# the long tail: simple calls that round out the namespace
# ---------------------------------------------------------------------------


@syscall("link")
def _link(ctx: SyscallContext) -> int:
    old = ctx.read_path(ctx.args[0])
    new = ctx.read_path(ctx.args[1])
    node = ctx.kernel.vfs.resolve(old, cwd=ctx.process.cwd)
    if node.is_dir:
        return Errno.EPERM.as_result()
    _, parent, name = ctx.kernel.vfs._walk(new, ctx.process.cwd)
    if name in parent.entries:
        return Errno.EEXIST.as_result()
    parent.entries[name] = node
    node.nlink += 1
    return 0


@syscall("alarm")
def _alarm(ctx: SyscallContext) -> int:
    return 0


@syscall("utime")
def _utime(ctx: SyscallContext) -> int:
    ctx.kernel.vfs.resolve(ctx.read_path(ctx.args[0]), cwd=ctx.process.cwd)
    return 0


@syscall("sync")
def _sync(ctx: SyscallContext) -> int:
    return 0


@syscall("times")
def _times(ctx: SyscallContext) -> int:
    ticks = ctx.vm.cycles // (ctx.kernel.cycles_per_second // 100)
    if ctx.args[0]:
        ctx.write_buffer(ctx.args[0], struct.pack("<IIII", ticks, 0, 0, 0))
    return ticks & 0x7FFFFFFF


@syscall("getgid")
def _getgid(ctx: SyscallContext) -> int:
    return 1000


@syscall("getegid")
def _getegid(ctx: SyscallContext) -> int:
    return 1000


@syscall("setuid")
def _setuid(ctx: SyscallContext) -> int:
    return 0 if ctx.args[0] == 1000 else Errno.EPERM.as_result()


@syscall("setgid")
def _setgid(ctx: SyscallContext) -> int:
    return 0 if ctx.args[0] == 1000 else Errno.EPERM.as_result()


@syscall("getpgrp")
def _getpgrp(ctx: SyscallContext) -> int:
    return ctx.process.pid


@syscall("setsid")
def _setsid(ctx: SyscallContext) -> int:
    return ctx.process.pid


@syscall("sigprocmask")
def _sigprocmask(ctx: SyscallContext) -> int:
    if ctx.args[2]:
        ctx.write_buffer(ctx.args[2], struct.pack("<I", 0))
    return 0


@syscall("getrlimit")
def _getrlimit(ctx: SyscallContext) -> int:
    if not ctx.args[1]:
        return Errno.EFAULT.as_result()
    ctx.write_buffer(ctx.args[1], struct.pack("<II", 0x7FFFFFFF, 0x7FFFFFFF))
    return 0


@syscall("setrlimit")
def _setrlimit(ctx: SyscallContext) -> int:
    return 0


@syscall("getrusage")
def _getrusage(ctx: SyscallContext) -> int:
    if ctx.args[1]:
        seconds, micros = ctx.kernel.current_timeofday(ctx.vm)
        ctx.write_buffer(ctx.args[1], struct.pack("<IIII", 0, micros, 0, 0))
    return 0


@syscall("truncate")
def _truncate(ctx: SyscallContext) -> int:
    node = ctx.kernel.vfs.resolve(ctx.read_path(ctx.args[0]), cwd=ctx.process.cwd)
    if not node.is_file:
        return Errno.EISDIR.as_result()
    length = ctx.args[1]
    if length < len(node.data):
        del node.data[length:]
    else:
        node.data.extend(bytes(length - len(node.data)))
    return 0


@syscall("ftruncate")
def _ftruncate(ctx: SyscallContext) -> int:
    description = ctx.process.fd(ctx.args[0])
    if description.inode is None or not description.inode.is_file:
        return Errno.EINVAL.as_result()
    length = ctx.args[1]
    data = description.inode.data
    if length < len(data):
        del data[length:]
    else:
        data.extend(bytes(length - len(data)))
    return 0


@syscall("fchmod")
def _fchmod(ctx: SyscallContext) -> int:
    description = ctx.process.fd(ctx.args[0])
    if description.inode is None:
        return Errno.EINVAL.as_result()
    description.inode.mode = ctx.args[1] & 0o7777
    return 0


@syscall("fchown")
def _fchown(ctx: SyscallContext) -> int:
    ctx.process.fd(ctx.args[0])
    return 0


@syscall("chown")
def _chown(ctx: SyscallContext) -> int:
    ctx.kernel.vfs.resolve(ctx.read_path(ctx.args[0]), cwd=ctx.process.cwd)
    return 0


@syscall("getcwd")
def _getcwd(ctx: SyscallContext) -> int:
    buf, size = ctx.args[0], ctx.args[1]
    cwd = ctx.process.cwd.encode() + b"\x00"
    if len(cwd) > size:
        return Errno.ERANGE.as_result()
    ctx.write_buffer(buf, cwd)
    return len(cwd)


@syscall("fchdir")
def _fchdir(ctx: SyscallContext) -> int:
    description = ctx.process.fd(ctx.args[0])
    if description.kind != "dir":
        return Errno.ENOTDIR.as_result()
    ctx.process.cwd = description.path or "/"
    return 0


@syscall("flock")
def _flock(ctx: SyscallContext) -> int:
    ctx.process.fd(ctx.args[0])
    return 0


@syscall("fsync")
def _fsync(ctx: SyscallContext) -> int:
    ctx.process.fd(ctx.args[0])
    return 0


# -- readiness (select/poll over sockets, pipes, console, files) -----------

POLLIN = 0x001
POLLPRI = 0x002
POLLOUT = 0x004
POLLERR = 0x008
POLLHUP = 0x010
POLLNVAL = 0x020


def _fd_readable(ctx: SyscallContext, description: FileDescription) -> bool:
    """Would read() complete without blocking?  EOF counts as ready."""
    if description.kind == "pipe":
        assert description.pipe is not None
        return bool(description.pipe.buffer) or description.pipe.writers <= 0
    if description.kind == "socket":
        sock = description.sock
        return True if sock is None else ctx.kernel.net.recv_ready(sock)
    # Console reads drain stdin then return EOF; files/dirs never block.
    return True


def _fd_writable(ctx: SyscallContext, description: FileDescription) -> bool:
    """Would write() complete without blocking?  An immediate EPIPE
    counts as ready — the guest must get the error, not park."""
    if description.kind == "pipe":
        assert description.pipe is not None
        return description.pipe.space > 0 or description.pipe.readers <= 0
    if description.kind == "socket":
        sock = description.sock
        return True if sock is None else ctx.kernel.net.send_ready(sock)
    return True


def _fd_hangup(ctx: SyscallContext, description: FileDescription) -> bool:
    if description.kind == "pipe":
        assert description.pipe is not None
        return description.pipe.writers <= 0 and not description.pipe.buffer
    if description.kind == "socket":
        sock = description.sock
        if sock is None or sock.conn is None:
            return False
        peer = 1 - sock.side
        return not sock.conn.open_ends[peer] and not sock.conn.buffers[sock.side]
    return False


def _read_fdset(ctx: SyscallContext, address: int, words: int) -> int:
    if address == 0:
        return 0
    raw = ctx.read_buffer(address, words * 4)
    return int.from_bytes(raw, "little")


def _write_fdset(ctx: SyscallContext, address: int, words: int, mask: int) -> None:
    if address:
        ctx.write_buffer(address, mask.to_bytes(words * 4, "little"))


@syscall("select")
def _select(ctx: SyscallContext) -> int:
    """Honest readiness over fd-set bitmaps (32-bit little-endian words).

    The degenerate pre-net form — every set pointer NULL — keeps the old
    stub contract (return ``nfds``), which the Table 3 profile programs
    still exercise.  A NULL timeout pointer blocks until something is
    ready; any non-NULL timeout polls once (the simulated machine has no
    time base, so finite timeouts expire immediately and deterministically).
    """
    from repro.kernel.process import MAX_FDS

    nfds = min(ctx.args[0], MAX_FDS)
    readfds, writefds, exceptfds, timeout = ctx.args[1:5]
    if not (readfds or writefds or exceptfds):
        return ctx.args[0]
    words = (max(nfds, 1) + 31) // 32
    want_read = _read_fdset(ctx, readfds, words)
    want_write = _read_fdset(ctx, writefds, words)
    want_except = _read_fdset(ctx, exceptfds, words)
    ready_read = ready_write = 0
    count = 0
    for fd in range(nfds):
        bit = 1 << fd
        if not ((want_read | want_write | want_except) & bit):
            continue
        description = ctx.process.fd(fd)  # EBADF on stale set bits
        if want_read & bit and _fd_readable(ctx, description):
            ready_read |= bit
            count += 1
        if want_write & bit and _fd_writable(ctx, description):
            ready_write |= bit
            count += 1
    if count == 0 and timeout == 0 and _sock_blocking(ctx):
        raise WouldBlock("select", fallback=0)
    _write_fdset(ctx, readfds, words, ready_read)
    _write_fdset(ctx, writefds, words, ready_write)
    _write_fdset(ctx, exceptfds, words, 0)
    return count


@syscall("poll")
def _poll(ctx: SyscallContext) -> int:
    """Honest poll over an array of ``struct pollfd`` (fd:i32,
    events:u16, revents:u16).  The degenerate pre-net form (NULL array)
    keeps the old stub contract.  ``timeout`` semantics match select:
    0 polls once, negative blocks, positive expires immediately."""
    fds_ptr, nfds, timeout = ctx.args[0], ctx.args[1], ctx.args[2]
    if fds_ptr == 0:
        return nfds
    if nfds == 0:
        return 0
    if nfds > 256:
        return Errno.EINVAL.as_result()
    raw = bytearray(ctx.read_buffer(fds_ptr, nfds * 8))
    count = 0
    for index in range(nfds):
        fd, events, _ = struct.unpack_from("<iHH", raw, index * 8)
        revents = 0
        if fd >= 0:
            if fd not in ctx.process.fds:
                revents = POLLNVAL
            else:
                description = ctx.process.fds[fd]
                if events & POLLIN and _fd_readable(ctx, description):
                    revents |= POLLIN
                if events & POLLOUT and _fd_writable(ctx, description):
                    revents |= POLLOUT
                if _fd_hangup(ctx, description):
                    revents |= POLLHUP
        if revents:
            count += 1
        struct.pack_into("<iHH", raw, index * 8, fd, events, revents)
    blocking_forever = timeout & 0x8000_0000  # negative: wait indefinitely
    if count == 0 and blocking_forever and _sock_blocking(ctx):
        raise WouldBlock("poll", fallback=0)
    ctx.write_buffer(fds_ptr, bytes(raw))
    return count


@syscall("mprotect")
def _mprotect(ctx: SyscallContext) -> int:
    """Change protection of the region containing the address.  Guest
    PROT_* bits match the simulator's (1=read, 2=write, 4=exec)."""
    address, _length, prot = ctx.args[0], ctx.args[1], ctx.args[2]
    if prot & ~0x7:
        return Errno.EINVAL.as_result()
    try:
        ctx.vm.memory.protect(address, prot & 0x7)
    except MemoryFault:
        return Errno.ENOMEM.as_result()
    ctx.vm._decode_cache.clear()
    return 0


@syscall("getpriority")
def _getpriority(ctx: SyscallContext) -> int:
    return 20  # nice 0, Linux getpriority encoding


@syscall("setpriority")
def _setpriority(ctx: SyscallContext) -> int:
    return 0


@syscall("statfs")
def _statfs(ctx: SyscallContext) -> int:
    ctx.kernel.vfs.resolve(ctx.read_path(ctx.args[0]), cwd=ctx.process.cwd)
    ctx.write_buffer(ctx.args[1], struct.pack("<IIII", 0x53454631, PAGE, 65536, 32768))
    return 0


@syscall("getgroups")
def _getgroups(ctx: SyscallContext) -> int:
    if ctx.args[0] >= 1 and ctx.args[1]:
        ctx.write_buffer(ctx.args[1], struct.pack("<I", 1000))
    return 1


@syscall("sched_yield")
def _sched_yield(ctx: SyscallContext) -> int:
    if ctx.kernel.scheduler_owns(ctx.process) and not ctx.retry:
        # Park once; the very next wake poll completes the call (the
        # retry path returns 0 below), re-queueing the caller at the
        # tail of the run queue — a real yield, not a no-op.
        ctx.kernel.metrics.inc("sched.yields")
        raise WouldBlock("yield", fallback=0)
    return 0


def _encode_wstatus(task) -> int:
    """POSIX wait-status encoding: termination signal in the low 7
    bits for killed processes, exit status in bits 8-15 otherwise."""
    if task.killed:
        return (task.exit_status - 128) & 0x7F
    return (task.exit_status & 0xFF) << 8


@syscall("wait4")
def _wait4(ctx: SyscallContext) -> int:
    if not ctx.kernel.scheduler_owns(ctx.process):
        return Errno.ECHILD.as_result()  # no children without a scheduler
    scheduler = ctx.kernel._scheduler
    pid_arg = ctx.args[0]
    status_ptr = ctx.args[1]
    options = ctx.args[2]
    pid_spec = pid_arg - 0x1_0000_0000 if pid_arg & 0x8000_0000 else pid_arg
    found = scheduler.find_zombie(ctx.process.pid, pid_spec)
    if found is None:
        return Errno.ECHILD.as_result()
    if found == "waiting":
        if options & 1:  # WNOHANG
            return 0
        raise WouldBlock(
            f"wait:{pid_spec}", fallback=Errno.ECHILD.as_result()
        )
    from repro.kernel.sched.scheduler import TaskState

    if status_ptr:
        ctx.write_buffer(status_ptr, struct.pack("<I", _encode_wstatus(found)))
    found.state = TaskState.REAPED
    ctx.kernel.metrics.inc("sched.zombies_reaped")
    return found.pid


@syscall("mlock")
def _mlock(ctx: SyscallContext) -> int:
    return 0


@syscall("munlock")
def _munlock(ctx: SyscallContext) -> int:
    return 0


@syscall("readv")
def _readv(ctx: SyscallContext) -> int:
    fd, iov, iovcnt = ctx.args[0], ctx.args[1], ctx.args[2]
    if iovcnt > 64:
        return Errno.EINVAL.as_result()
    total = 0
    for i in range(iovcnt):
        base, length = struct.unpack("<II", ctx.read_buffer(iov + 8 * i, 8))
        inner = SyscallContext(
            kernel=ctx.kernel, process=ctx.process, vm=ctx.vm,
            name="read", args=(fd, base, length, 0, 0, 0),
            retry=ctx.retry,
        )
        try:
            result = dispatch(inner)
        except WouldBlock:
            if total:
                # Data already consumed (a pipe drained mid-vector):
                # return the partial count instead of blocking, so a
                # retry can never re-read bytes the guest already has.
                break
            raise
        if result >= 0xFFFFF001:
            return result
        total += result
        if result < length:
            break
    ctx.transferred = total
    return total
