"""The kernel object: trap dispatch, process loading, enforcement.

One :class:`Kernel` models one machine: a filesystem, a MAC key shared
with the trusted installer, an enforcement mode, the per-process
authentication counters, and the audit log.  It implements the VM's
:class:`repro.cpu.vm.TrapHandler` protocol, so constructing a process
is just "link the binary, map the segments, point the VM at us".
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique
from typing import Optional

from repro.binfmt import SefBinary, link
from repro.binfmt.image import PAGE_SIZE
from repro.cpu.memory import (
    Memory,
    PROT_EXEC,
    PROT_READ,
    PROT_WRITE,
)
from repro.cpu.vm import VM, ProcessExit
from repro.crypto import Key, MacProvider, mac_provider_for_key
from repro.isa import INSTRUCTION_SIZE
from repro.kernel.audit import AuditEvent, AuditLog, FastPathStats
from repro.kernel.auth import AuthChecker, AuthViolation
from repro.kernel.authcache import VerifiedSiteCache
from repro.kernel.costs import CostModel
from repro.kernel.net import NetStack
from repro.kernel.process import Process
from repro.kernel.sched.blocking import ImageReplaced, ProcessBlocked, WouldBlock
from repro.kernel.sched.scheduler import MultiRunResult, Scheduler, Task
from repro.kernel.syscalls import (
    SYSCALL_NAMES,
    SyscallContext,
    dispatch,
)
from repro.kernel.verifierjit import VerifierJit
from repro.kernel.vfs import Vfs
from repro.obs import NULL_RECORDER, MetricsRegistry, Recorder
from repro.policy.capability import CapabilityTable

#: Fixed epoch for deterministic time syscalls: 26 Sep 2005, the
#: paper's submission date.
EPOCH = 1127692800

KILL_STATUS = 128 + 9  # SIGKILL-style status for security terminations


@unique
class EnforcementMode(Enum):
    """What the kernel does with *unauthenticated* binaries.

    Protected (installer-produced) binaries are always enforced; the
    mode only governs legacy binaries, mirroring a staged rollout where
    "the system as a whole is protected once all binaries ... have been
    transformed" (§3.3)."""

    PERMISSIVE = "permissive"  # legacy binaries may use plain SYS
    ENFORCE = "enforce"  # plain SYS is always fatal


@dataclass
class RunResult:
    """Everything a caller learns from running one program."""

    exit_status: int
    killed: bool
    kill_reason: str
    stdout: bytes
    stderr: bytes
    cycles: int
    instructions: int
    syscalls: int
    process: Process
    vm: VM

    @property
    def ok(self) -> bool:
        return not self.killed and self.exit_status == 0


class Kernel:
    """The simulated operating system."""

    MAX_EXEC_DEPTH = 8

    def __init__(
        self,
        key: Optional[Key] = None,
        mode: EnforcementMode = EnforcementMode.PERMISSIVE,
        personality: str = "linux",
        costs: Optional[CostModel] = None,
        capability_tracking: bool = False,
        cycles_per_second: int = 2_400_000_000,
        nx: bool = False,
        fastpath: bool = True,
        engine: str = "threaded",
        chain: bool = True,
        verifier_jit: bool = True,
        recorder: Optional[Recorder] = None,
    ):
        self.key = key or Key.generate()
        self.mac: MacProvider = mac_provider_for_key(self.key)
        self.mode = mode
        self.personality = personality
        self.costs = costs or CostModel()
        self.vfs = Vfs()
        #: Observability (see DESIGN.md "Observability").  ``obs`` is
        #: the span recorder — the shared NullRecorder unless the caller
        #: passes a :class:`repro.obs.TraceRecorder` — and ``metrics``
        #: is the machine-wide counter registry that the audit log's
        #: fast-path stats and the engines' post-run tallies feed.
        self.obs: Recorder = recorder if recorder is not None else NULL_RECORDER
        self.metrics = MetricsRegistry()
        self.audit = AuditLog(fastpath=FastPathStats(registry=self.metrics))
        self.capability_tracking = capability_tracking
        self.cycles_per_second = cycles_per_second
        #: No-execute enforcement.  The paper's 2005-era testbed had no
        #: NX bit (which is what makes stack shellcode expressible);
        #: enabling it supports the hardware-vs-authentication ablation.
        self.nx = nx
        #: Verification fast path (per-process VerifiedSiteCache).  Off
        #: (`fastpath=False`, the benchmarks' --no-fastpath escape
        #: hatch) every trap pays the full CMAC, as the paper measured.
        self.fastpath = fastpath
        #: CPU execution engine for guest processes: "threaded" (the
        #: basic-block translation cache, default) or "interp" (the
        #: reference interpreter).  Both are bit-identical by contract.
        self.engine = engine
        #: Direct block chaining + superblock fusion in the threaded
        #: engine (`chain=False`, the --no-chain escape hatch, restores
        #: plain per-block dispatch).  Bit-identical either way.
        self.chain = chain
        #: Verifier specialization (per-process SiteThunk partitions,
        #: see kernel/verifierjit.py).  Rides on the fast path — only
        #: active when ``fastpath`` is too — and `verifier_jit=False`
        #: (the --no-verifier-jit escape hatch) restores the generic
        #: checker for every trap.  Bit-identical either way.
        self.verifier_jit = verifier_jit
        self._checker = AuthChecker(self.mac, self.costs, self.obs)
        self._authcaches: dict[int, VerifiedSiteCache] = {}
        self._jits: dict[int, VerifierJit] = {}
        #: Optional syscall tracer (duck-typed: .record(ctx)); used by
        #: the training-based baseline monitors.
        self.tracer = None
        self._next_pid = 100
        self._vm_process: dict[int, Process] = {}
        #: Per-pid kernel state.  Keyed by pid (not VM identity) so that
        #: fork and in-place execve keep a process's capability table,
        #: mmap cursor, and verified-site cache attached to the process
        #: across VM replacement.
        self._capabilities: dict[int, CapabilityTable] = {}
        self._mmap_cursor: dict[int, int] = {}
        self._exec_depth = 0
        #: The active multiprogramming scheduler, if any.  A process is
        #: "scheduled" when its pid is in the scheduler's task table;
        #: everything else runs with the original synchronous semantics.
        self._scheduler: Optional[Scheduler] = None
        self._next_pipe_ident = 0
        #: Loopback network state (port table, connection idents); see
        #: kernel/net/.  Deterministic: idents are a plain counter and
        #: all queues are FIFO.
        self.net = NetStack(metrics=self.metrics)

    # -- loading ----------------------------------------------------------

    def load(
        self,
        binary: SefBinary,
        argv: Optional[list[str]] = None,
        stdin: bytes = b"",
        cwd: str = "/",
    ) -> tuple[Process, VM]:
        """Link, map, and prepare one process (not yet run)."""
        image = link(binary)
        memory, heap_base = self._map_image(image)
        process = Process(
            pid=self._allocate_pid(),
            name=image.metadata.get("program", binary.entry),
            cwd=cwd,
            brk=heap_base,
            initial_brk=heap_base,
            authenticated=image.metadata.get("authenticated") == "yes",
            stdin=stdin,
        )
        vm = VM(
            memory=memory,
            entry=image.entry,
            trap_handler=self,
            nx=self.nx,
            engine=self.engine,
            chain=self.chain,
            recorder=self.obs,
        )
        self._vm_process[id(vm)] = process
        self._capabilities[process.pid] = CapabilityTable()
        if self.fastpath:
            self._authcaches[process.pid] = VerifiedSiteCache()
            if self.verifier_jit:
                self._jits[process.pid] = self._new_jit()
        self._setup_argv(vm, argv or [process.name])
        return process, vm

    def _new_jit(self) -> VerifierJit:
        """A fresh per-process thunk partition (load/fork/execve)."""
        return VerifierJit(self.mac, self.costs, self.metrics, self.obs)

    def _drop_jit(self, pid: int) -> None:
        """Tear down a pid's thunk partition (exit/execve), folding its
        dropped thunks into the invalidation counters."""
        jit = self._jits.pop(pid, None)
        if jit is None:
            return
        dropped = jit.invalidate()
        if dropped:
            self.metrics.inc("verifier.thunks_invalidated", dropped)
            if self.obs.enabled:
                self.obs.inc("verifier.thunks_invalidated", dropped)

    def _map_image(self, image) -> tuple[Memory, int]:
        """Map a linked image's segments plus a fresh heap; shared by
        initial load and scheduled (in-place) execve."""
        memory = Memory()
        for segment in image.segments:
            if segment.size == 0:
                continue  # empty sections occupy no pages
            prot = PROT_READ
            if segment.flags & 0x2:
                prot |= PROT_WRITE
            if segment.flags & 0x4:
                prot |= PROT_EXEC
            size = max(segment.size, 1)
            # Round segment sizes to pages so images stay contiguous.
            size = (size + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
            memory.map_region(
                segment.vaddr, size, prot, name=segment.name, data=segment.data
            )
        heap_base = (image.end + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
        memory.map_region(heap_base, PAGE_SIZE, PROT_READ | PROT_WRITE, name="[heap]")
        return memory, heap_base

    def _setup_argv(self, vm: VM, argv: list[str]) -> None:
        """Push argv strings and the pointer array onto the stack;
        the process starts with r1=argc, r2=argv."""
        pointers = []
        for arg in argv:
            data = arg.encode("utf-8") + b"\x00"
            vm.regs[15] -= len(data)
            vm.regs[15] &= ~0x3
            vm.memory.write(vm.regs[15], data)
            pointers.append(vm.regs[15])
        vm.regs[15] -= 4 * (len(pointers) + 1)
        table = vm.regs[15]
        for i, pointer in enumerate(pointers):
            vm.memory.write_u32(table + 4 * i, pointer)
        vm.memory.write_u32(table + 4 * len(pointers), 0)
        vm.regs[1] = len(argv)
        vm.regs[2] = table

    def run(
        self,
        binary: SefBinary,
        argv: Optional[list[str]] = None,
        stdin: bytes = b"",
        cwd: str = "/",
        max_instructions: int = 50_000_000,
    ) -> RunResult:
        """Load and execute a program to completion."""
        process, vm = self.load(binary, argv=argv, stdin=stdin, cwd=cwd)
        try:
            status = vm.run(max_instructions=max_instructions)
        finally:
            self.release_process(process, vm)
        return RunResult(
            exit_status=status,
            killed=vm.killed,
            kill_reason=vm.kill_reason,
            stdout=bytes(process.stdout),
            stderr=bytes(process.stderr),
            cycles=vm.cycles,
            instructions=vm.instructions_executed,
            syscalls=vm.syscall_count,
            process=process,
            vm=vm,
        )

    def run_many(
        self,
        programs,
        timeslice: int = 5000,
        max_instructions: int = 200_000_000,
    ) -> MultiRunResult:
        """Run several programs concurrently under a preemptive
        round-robin scheduler.

        ``programs`` is a list of :class:`SefBinary` or ``(binary,
        argv)`` / ``(binary, argv, stdin)`` tuples.  Results come back
        in spawn order; processes created at runtime (fork/spawn) are
        reachable through ``result.scheduler.tasks``."""
        scheduler = Scheduler(
            self, timeslice=timeslice, max_instructions=max_instructions
        )
        top: list[Task] = []
        for spec in programs:
            argv: Optional[list[str]] = None
            stdin = b""
            if isinstance(spec, tuple):
                binary = spec[0]
                if len(spec) > 1:
                    argv = spec[1]
                if len(spec) > 2:
                    stdin = spec[2]
            else:
                binary = spec
            process, vm = self.load(binary, argv=argv, stdin=stdin)
            top.append(scheduler.adopt(process, vm))
        scheduler.run()
        results = [self._task_result(task) for task in top]
        return MultiRunResult(results=results, scheduler=scheduler)

    def _task_result(self, task: Task) -> RunResult:
        return RunResult(
            exit_status=(
                task.exit_status if task.exit_status is not None else KILL_STATUS
            ),
            killed=task.killed,
            kill_reason=task.kill_reason,
            stdout=bytes(task.process.stdout),
            stderr=bytes(task.process.stderr),
            cycles=task.vm.cycles,
            instructions=task.vm.instructions_executed,
            syscalls=task.vm.syscall_count,
            process=task.process,
            vm=task.vm,
        )

    def release_process(self, process: Process, vm: VM, task: Optional[Task] = None) -> None:
        """Tear down a process's kernel-side state at exit.

        Snapshots the per-pid fast-path cache traffic into the task (if
        any) before invalidating — the cache never outlives the address
        space it was observed in."""
        self._vm_process.pop(id(vm), None)
        self._capabilities.pop(process.pid, None)
        self._mmap_cursor.pop(process.pid, None)
        authcache = self._authcaches.pop(process.pid, None)
        if authcache is not None:
            if task is not None:
                task.fastpath_hits += authcache.hits
                task.fastpath_misses += authcache.misses
            # Exit/exec invalidation: cached verifications never
            # outlive the address space they were observed in.
            dropped = authcache.invalidate()
            self.audit.fastpath.invalidations += dropped
            if self.obs.enabled:
                self.obs.inc("fastpath.invalidations", dropped)
        self._drop_jit(process.pid)
        self._sync_engine_metrics(vm)

    def _allocate_pid(self) -> int:
        pid = self._next_pid
        self._next_pid += 1
        return pid

    def _sync_engine_metrics(self, vm: VM) -> None:
        """Fold the engine-local tallies a run accumulated into the
        machine-wide registry.  Done once per process teardown so the
        hot loops only ever touch plain attribute counters."""
        metrics = self.metrics
        metrics.inc("engine.instructions_retired", vm.instructions_executed)
        metrics.inc("engine.syscalls", vm.syscall_count)
        metrics.inc("decode.invalidations", vm.decode_invalidations)
        block_cache = vm._block_cache
        if block_cache is not None:
            metrics.inc("engine.blocks_compiled", block_cache.compiles)
            metrics.inc("engine.blocks_evicted", block_cache.invalidations)
            metrics.inc("engine.chains_linked", block_cache.chains_linked)
            metrics.inc("engine.chains_severed", block_cache.chains_severed)
            metrics.inc("engine.superblocks_fused", block_cache.superblocks_fused)
            metrics.inc("engine.superblocks_killed", block_cache.superblocks_killed)
        if self.obs.enabled:
            self.obs.inc("engine.instructions_retired", vm.instructions_executed)
            self.obs.inc("engine.syscalls", vm.syscall_count)
            self.obs.inc("decode.invalidations", vm.decode_invalidations)
            if block_cache is not None:
                self.obs.inc("engine.blocks_compiled", block_cache.compiles)
                self.obs.inc("engine.blocks_evicted", block_cache.invalidations)
                self.obs.inc("engine.chains_linked", block_cache.chains_linked)
                self.obs.inc("engine.chains_severed", block_cache.chains_severed)
                self.obs.inc("engine.superblocks_fused", block_cache.superblocks_fused)
                self.obs.inc("engine.superblocks_killed", block_cache.superblocks_killed)

    # -- trap handling (TrapHandler protocol) --------------------------------

    def handle_trap(self, vm: VM, authenticated: bool) -> int:
        process = self._vm_process.get(id(vm))
        if process is None:
            raise ProcessExit(KILL_STATUS, killed=True, reason="orphan VM trap")

        if authenticated:
            return self._handle_asys(vm, process)
        return self._handle_sys(vm, process)

    def _handle_sys(self, vm: VM, process: Process) -> int:
        """A plain SYS trap."""
        number = vm.regs[0]
        name = SYSCALL_NAMES.get(number, f"syscall#{number}")
        if process.authenticated:
            # §3.4: "Unauthenticated calls are also blocked."
            self._kill(
                vm, process, name,
                "unauthenticated system call from protected binary",
            )
        if self.mode is EnforcementMode.ENFORCE:
            self._kill(
                vm, process, name,
                "unauthenticated binary denied in enforcing mode",
            )
        return self._dispatch(vm, process, number)

    def _handle_asys(self, vm: VM, process: Process) -> int:
        """An authenticated ASYS trap: check, then dispatch.

        The kernel owns the "syscall-verify" root span (one per trap)
        so the verifier-JIT fast path and the generic checker's staged
        pipeline present the same span tree shape to the recorder."""
        rec = self.obs
        traced = rec.enabled
        if traced:
            span_depth = rec.open_spans
            rec.begin("syscall-verify", "verify")
        cache = self._authcaches.get(process.pid)
        jit = self._jits.get(process.pid)
        result = jit.execute(vm, process, cache) if jit is not None else None
        if result is None:
            try:
                result = self._checker.check(vm, process, cache)
            except AuthViolation as violation:
                number = vm.regs[0]
                name = SYSCALL_NAMES.get(number, f"syscall#{number}")
                if traced:
                    # A violation aborts the checker mid-stage;
                    # rebalance the span stack before the kill unwinds
                    # the VM.
                    rec.close_to(span_depth)
                self._kill(vm, process, name, violation.reason)
                raise AssertionError("unreachable")  # pragma: no cover
            if jit is not None:
                # First full verification of this site (or its thunk
                # just got voided): specialize it for the next trap.
                jit.compile_site(vm, process, result, cache)
        if traced:
            rec.end()  # syscall-verify
        self.audit.fastpath.hits += result.cache_hits
        self.audit.fastpath.misses += result.cache_misses
        if traced:
            rec.inc("fastpath.hits", result.cache_hits)
            rec.inc("fastpath.misses", result.cache_misses)
        if result.fd_mask and self.capability_tracking:
            self._check_capability(vm, process, result)
        try:
            cycles = self._dispatch(
                vm, process, result.syscall_number, result.block_id
            )
        except ProcessBlocked as blocked:
            # The §3.4 checks above already ran (and advanced the
            # counter); their cost is charged once, when the blocked
            # dispatch eventually completes.
            blocked.auth_cycles = result.cycles
            raise
        return cycles + result.cycles

    def _check_capability(self, vm: VM, process: Process, result) -> None:
        """§5.3: each tracked fd argument must descend from a permitted
        producing call site."""
        table = self._capabilities.get(process.pid)
        name = SYSCALL_NAMES.get(result.syscall_number, "?")
        for index in range(6):
            if not result.fd_mask & (1 << index):
                continue
            fd = vm.regs[1 + index]
            if fd in (0, 1, 2):  # inherited standard descriptors
                continue
            if table is None or not table.check(fd, result.fd_allowed):
                self._kill(
                    vm, process, name,
                    f"capability violation: fd {fd} (arg {index}) not "
                    f"produced by a permitted call site",
                )

    def _dispatch(
        self,
        vm: VM,
        process: Process,
        number: int,
        block_id: Optional[int] = None,
        retry: bool = False,
    ) -> int:
        name = SYSCALL_NAMES.get(number)
        if name is None:
            vm.regs[0] = 0xFFFFFFDA  # -ENOSYS
            return self.costs.syscall_cost("unknown")
        ctx = SyscallContext(
            kernel=self,
            process=process,
            vm=vm,
            name=name,
            args=tuple(vm.regs[1:7]),
            retry=retry,
        )
        try:
            result = dispatch(ctx)
        except WouldBlock as would_block:
            if self.scheduler_owns(process):
                raise ProcessBlocked(
                    would_block.wait, number, name, block_id, trap_pc=vm.pc
                ) from None
            # Synchronous mode: nobody can ever wake us, so complete
            # with the handler's non-blocking fallback (which matches
            # the pre-scheduler stub semantics).
            result = would_block.fallback & 0xFFFFFFFF
        vm.regs[0] = result
        if self.capability_tracking and block_id is not None:
            self._track_capability(process, vm, name, result, block_id)
        return self.costs.syscall_cost(name, ctx.transferred)

    def retry_blocked(self, task: Task) -> bool:
        """Re-run a parked task's blocked dispatch (never the trap — the
        verification already happened and advanced the counter).  On
        success the result lands in r0, the deferred verification cost
        is charged, and the PC advances past the trap; returns False if
        the wait condition still holds."""
        pending = task.pending
        assert pending is not None
        vm = task.vm
        try:
            cost = self._dispatch(
                vm, task.process, pending.number, pending.block_id, retry=True
            )
        except ProcessBlocked:
            return False
        vm.cycles += cost + pending.auth_cycles
        vm.pc = pending.trap_pc + INSTRUCTION_SIZE
        task.pending = None
        return True

    def scheduler_owns(self, process: Process) -> bool:
        """Is this process managed by an active scheduler (as opposed
        to a synchronous ``Kernel.run`` invocation)?"""
        scheduler = self._scheduler
        return scheduler is not None and process.pid in scheduler.tasks

    def allocate_pipe_ident(self) -> int:
        self._next_pipe_ident += 1
        return self._next_pipe_ident

    def _track_capability(
        self, process: Process, vm: VM, name: str, result: int, block_id: int
    ) -> None:
        table = self._capabilities.get(process.pid)
        if table is None:
            return
        if name in ("open", "socket", "dup", "dup2") and result < 0x8000_0000:
            if result not in table.owner:
                table.grant(block_id, result)
        elif name == "close" and result == 0:
            table.revoke(vm.regs[1])

    def capability_table(self, vm: VM) -> CapabilityTable:
        return self._capabilities[self._vm_process[id(vm)].pid]

    def _kill(self, vm: VM, process: Process, syscall: str, reason: str) -> None:
        self.audit.record(
            AuditEvent(
                kind="killed",
                pid=process.pid,
                program=process.name,
                syscall=syscall,
                reason=reason,
                call_site=vm.pc,
            )
        )
        raise ProcessExit(KILL_STATUS, killed=True, reason=reason)

    # -- services used by syscall handlers -----------------------------------

    def current_time(self, vm: VM) -> int:
        return EPOCH + vm.cycles // self.cycles_per_second

    def current_timeofday(self, vm: VM) -> tuple[int, int]:
        seconds = EPOCH + vm.cycles // self.cycles_per_second
        micros = (vm.cycles % self.cycles_per_second) * 1_000_000 // self.cycles_per_second
        return seconds, micros

    def next_mmap_address(self, vm: VM, size: int) -> int:
        pid = self._vm_process[id(vm)].pid
        cursor = self._mmap_cursor.get(pid, 0x40000000)
        self._mmap_cursor[pid] = cursor + size + PAGE_SIZE
        return cursor

    # -- execve ----------------------------------------------------------------

    def register_binary(self, path: str, binary: SefBinary) -> None:
        """Install a program file into the VFS so execve can find it."""
        self.vfs.write_file(path, binary.to_bytes())
        self.vfs.chmod(path, 0o755)

    def _resolve_executable(
        self, process: Process, path: str, syscall: str = "execve"
    ) -> SefBinary:
        """Read and validate an executable for execve/spawn: must parse
        as a SEF binary, and enforcing mode refuses unauthenticated
        images (audited)."""
        from repro.kernel.errors import Errno
        from repro.kernel.vfs import VfsError

        data = self.vfs.read_file(path, cwd=process.cwd)
        try:
            binary = SefBinary.from_bytes(bytes(data))
        except Exception:
            raise VfsError(Errno.EACCES, path) from None
        if self.mode is EnforcementMode.ENFORCE and binary.metadata.get(
            "authenticated"
        ) != "yes":
            self.audit.record(
                AuditEvent(
                    kind="blocked",
                    pid=process.pid,
                    program=process.name,
                    syscall=syscall,
                    reason=f"refusing unauthenticated binary {path}",
                )
            )
            raise VfsError(Errno.EPERM, path)
        return binary

    def execve(self, ctx: SyscallContext, path: str, argv=None) -> int:
        """Model image replacement by running the target synchronously.

        Returns the status the calling process should exit with; raises
        VfsError (mapped to -errno) if the target cannot be executed."""
        from repro.kernel.errors import Errno
        from repro.kernel.vfs import VfsError

        if self._exec_depth >= self.MAX_EXEC_DEPTH:
            raise VfsError(Errno.ELOOP, path)
        binary = self._resolve_executable(ctx.process, path)
        self._exec_depth += 1
        try:
            result = self.run(binary, argv=argv or None, cwd=ctx.process.cwd)
        finally:
            self._exec_depth -= 1
        ctx.process.stdout.extend(result.stdout)
        ctx.process.stderr.extend(result.stderr)
        return result.exit_status

    # -- multiprogramming services (scheduled processes only) ---------------

    def exec_replace(self, ctx: SyscallContext, path: str, argv=None) -> None:
        """True in-place execve for a scheduled process: build a fresh
        VM over a new image, reset the process's authentication context
        (counter back to 0 — the new image's .polstate starts at its
        installed epoch), and swap it into the task.  Raises
        :class:`ImageReplaced` on success (execve does not return)."""
        process = ctx.process
        old_vm = ctx.vm
        binary = self._resolve_executable(process, path)
        image = link(binary)
        memory, heap_base = self._map_image(image)
        new_vm = VM(
            memory=memory,
            entry=image.entry,
            trap_handler=self,
            nx=self.nx,
            engine=self.engine,
            chain=self.chain,
            recorder=self.obs,
        )
        # Accounting continuity: the scheduler's slice bookkeeping and
        # the guest-visible clock see one uninterrupted process.
        new_vm.cycles = old_vm.cycles
        new_vm.instructions_executed = old_vm.instructions_executed
        new_vm.syscall_count = old_vm.syscall_count
        process.name = image.metadata.get("program", binary.entry)
        process.brk = heap_base
        process.initial_brk = heap_base
        process.authenticated = image.metadata.get("authenticated") == "yes"
        process.auth_counter = 0
        process.signal_handlers.clear()
        task = self._scheduler.tasks[process.pid]
        # Per-pid kernel state: the capability table and verified-site
        # cache belong to the old image; drop and restart them.
        self._vm_process.pop(id(old_vm), None)
        self._vm_process[id(new_vm)] = process
        self._capabilities[process.pid] = CapabilityTable()
        self._mmap_cursor.pop(process.pid, None)
        old_cache = self._authcaches.pop(process.pid, None)
        if old_cache is not None:
            task.fastpath_hits += old_cache.hits
            task.fastpath_misses += old_cache.misses
            dropped = old_cache.invalidate()
            self.audit.fastpath.invalidations += dropped
            if self.obs.enabled:
                self.obs.inc("fastpath.invalidations", dropped)
        self._drop_jit(process.pid)
        if self.fastpath:
            self._authcaches[process.pid] = VerifiedSiteCache()
            if self.verifier_jit:
                self._jits[process.pid] = self._new_jit()
        self._setup_argv(new_vm, argv or [process.name])
        task.vm = new_vm
        raise ImageReplaced(f"execve {path}")

    def fork_process(self, ctx: SyscallContext) -> int:
        """Real fork for a scheduled process.

        The address space is duplicated copy-on-reference: read-only
        regions (code, rodata — including the image's MACed policy
        records) are shared by reference; writable regions (stack,
        heap, .data, and crucially the ``.polstate`` lastBlock/lbMAC
        section) are copied.  The child inherits the parent's
        ``auth_counter``, which is consistent with the copied polstate
        because the §3.4 checker re-MACed it *before* this handler ran
        — from here on the two processes' counters diverge
        independently, which is exactly the per-process isolation the
        paper's §3.2 checker provides."""
        from repro.cpu.memory import PROT_WRITE as _W

        parent = ctx.process
        parent_vm = ctx.vm
        scheduler = self._scheduler
        memory = Memory()
        for region in parent_vm.memory.regions():
            if region.prot & _W:
                memory.map_region(
                    region.start,
                    len(region.data),
                    region.prot,
                    name=region.name,
                    data=bytes(region.data),
                )
            else:
                memory.adopt_region(region)
        child_vm = VM(
            memory=memory,
            entry=parent_vm.pc,
            trap_handler=self,
            nx=self.nx,
            engine=self.engine,
            chain=self.chain,
            recorder=self.obs,
            map_stack=False,  # the copied image already contains [stack]
        )
        child_vm.regs[:] = parent_vm.regs
        child_vm.flag_zero = parent_vm.flag_zero
        child_vm.flag_neg = parent_vm.flag_neg
        child_vm.cycles = parent_vm.cycles
        child_vm.instructions_executed = parent_vm.instructions_executed
        child_vm.syscall_count = parent_vm.syscall_count
        child_vm.stack_top = parent_vm.stack_top
        child_vm.pc = parent_vm.pc + INSTRUCTION_SIZE  # resume past the trap
        child_vm.regs[0] = 0  # fork() returns 0 in the child
        child = Process(
            pid=self._allocate_pid(),
            name=parent.name,
            cwd=parent.cwd,
            fds={fd: desc.dup() for fd, desc in parent.fds.items()},
            brk=parent.brk,
            initial_brk=parent.initial_brk,
            auth_counter=parent.auth_counter,
            authenticated=parent.authenticated,
            stdin=parent.stdin,
            stdin_offset=parent.stdin_offset,
            signal_handlers=dict(parent.signal_handlers),
        )
        self._vm_process[id(child_vm)] = child
        parent_caps = self._capabilities.get(parent.pid)
        if parent_caps is not None:
            self._capabilities[child.pid] = CapabilityTable(
                by_site={site: set(fds) for site, fds in parent_caps.by_site.items()},
                owner=dict(parent_caps.owner),
            )
        if parent.pid in self._mmap_cursor:
            self._mmap_cursor[child.pid] = self._mmap_cursor[parent.pid]
        if self.fastpath:
            # A fresh per-pid cache: verified sites never leak across
            # pids, so a cross-process cache-poisoning angle does not
            # exist by construction (tested).  Same for thunks — the
            # child's partition starts empty; a sibling's compiled
            # verifier is never consulted.
            self._authcaches[child.pid] = VerifiedSiteCache()
            if self.verifier_jit:
                self._jits[child.pid] = self._new_jit()
        scheduler.adopt(child, child_vm, parent_pid=parent.pid)
        self.metrics.inc("sched.forks")
        return child.pid

    def spawn_process(self, ctx: SyscallContext, path: str, argv=None) -> int:
        """Asynchronous spawn for a scheduled process: load the target
        as a child task and return its pid immediately (the caller
        collects it with wait4)."""
        binary = self._resolve_executable(ctx.process, path, syscall="spawn")
        process, vm = self.load(binary, argv=argv or None, cwd=ctx.process.cwd)
        self._scheduler.adopt(process, vm, parent_pid=ctx.process.pid)
        self.metrics.inc("sched.spawns")
        return process.pid
