"""Kernel audit log.

§3.4: on a failed check the kernel "terminates the process, logs the
system call, and alerts the administrator".  The audit log is the
administrator-visible record; attack tests and benchmarks assert
against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class AuditEvent:
    kind: str  # "killed" | "blocked" | "alert" | "info"
    pid: int
    program: str
    syscall: Optional[str]
    reason: str
    call_site: Optional[int] = None

    def render(self) -> str:
        site = f" site={self.call_site:#010x}" if self.call_site is not None else ""
        call = f" syscall={self.syscall}" if self.syscall else ""
        return f"[{self.kind}] pid={self.pid} {self.program}{call}{site}: {self.reason}"


@dataclass
class FastPathStats:
    """Machine-wide verification fast-path counters.

    ``hits``/``misses`` count per-site call-MAC cache probes (a miss
    includes both cold sites and tampered re-probes that fell back to
    the full CMAC); ``invalidations`` counts cache entries dropped at
    process exit/exec.  Benchmarks and the audit trail use these to
    report fast-path coverage alongside the timing tables.
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def render(self) -> str:
        return (
            f"fastpath: {self.hits} hits / {self.misses} misses "
            f"({100.0 * self.hit_rate():.1f}% hit rate), "
            f"{self.invalidations} entries invalidated"
        )


@dataclass
class AuditLog:
    events: list[AuditEvent] = field(default_factory=list)
    fastpath: FastPathStats = field(default_factory=FastPathStats)

    def record(self, event: AuditEvent) -> None:
        self.events.append(event)

    def kills(self) -> list[AuditEvent]:
        return [e for e in self.events if e.kind == "killed"]

    def alerts(self) -> list[AuditEvent]:
        return [e for e in self.events if e.kind in ("killed", "blocked", "alert")]

    def clear(self) -> None:
        self.events.clear()
        self.fastpath.reset()

    def __len__(self) -> int:
        return len(self.events)
