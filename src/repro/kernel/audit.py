"""Kernel audit log.

§3.4: on a failed check the kernel "terminates the process, logs the
system call, and alerts the administrator".  The audit log is the
administrator-visible record; attack tests and benchmarks assert
against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class AuditEvent:
    kind: str  # "killed" | "blocked" | "alert" | "info"
    pid: int
    program: str
    syscall: Optional[str]
    reason: str
    call_site: Optional[int] = None

    def render(self) -> str:
        site = f" site={self.call_site:#010x}" if self.call_site is not None else ""
        call = f" syscall={self.syscall}" if self.syscall else ""
        return f"[{self.kind}] pid={self.pid} {self.program}{call}{site}: {self.reason}"


@dataclass(frozen=True)
class FastPathSnapshot:
    """An immutable copy of the fast-path counters at one instant.

    :meth:`FastPathStats.reset` returns one of these so a caller that
    resets between benchmark phases reads a consistent triple — reading
    the live stats after the reset (or while another phase has already
    started accumulating) races.
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class FastPathStats:
    """Machine-wide verification fast-path counters.

    ``hits``/``misses`` count per-site call-MAC cache probes (a miss
    includes both cold sites and tampered re-probes that fell back to
    the full CMAC); ``invalidations`` counts cache entries dropped at
    process exit/exec.  Benchmarks and the audit trail use these to
    report fast-path coverage alongside the timing tables.

    Since the observability layer landed this is a *view* over a
    :class:`repro.obs.metrics.MetricsRegistry` (the kernel's, so the
    same numbers appear in ``repro metrics`` dumps under
    ``fastpath.*``); standalone construction gets a private registry
    and behaves exactly like the old dataclass.
    """

    __slots__ = ("_registry",)

    def __init__(
        self,
        hits: int = 0,
        misses: int = 0,
        invalidations: int = 0,
        registry: Optional[MetricsRegistry] = None,
    ):
        self._registry = registry if registry is not None else MetricsRegistry()
        if hits:
            self._registry.set("fastpath.hits", hits)
        if misses:
            self._registry.set("fastpath.misses", misses)
        if invalidations:
            self._registry.set("fastpath.invalidations", invalidations)

    # -- counter views ---------------------------------------------------

    @property
    def hits(self) -> int:
        return self._registry.get("fastpath.hits")

    @hits.setter
    def hits(self, value: int) -> None:
        self._registry.set("fastpath.hits", value)

    @property
    def misses(self) -> int:
        return self._registry.get("fastpath.misses")

    @misses.setter
    def misses(self, value: int) -> None:
        self._registry.set("fastpath.misses", value)

    @property
    def invalidations(self) -> int:
        return self._registry.get("fastpath.invalidations")

    @invalidations.setter
    def invalidations(self, value: int) -> None:
        self._registry.set("fastpath.invalidations", value)

    # -- derived ---------------------------------------------------------

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> FastPathSnapshot:
        return FastPathSnapshot(self.hits, self.misses, self.invalidations)

    def reset(self) -> FastPathSnapshot:
        """Zero the counters; returns the pre-reset snapshot so callers
        interleaving measurement phases cannot race the reset."""
        snapshot = self.snapshot()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        return snapshot

    def render(self) -> str:
        return (
            f"fastpath: {self.hits} hits / {self.misses} misses "
            f"({100.0 * self.hit_rate():.1f}% hit rate), "
            f"{self.invalidations} entries invalidated"
        )


@dataclass
class AuditLog:
    events: list[AuditEvent] = field(default_factory=list)
    fastpath: FastPathStats = field(default_factory=FastPathStats)

    def record(self, event: AuditEvent) -> None:
        self.events.append(event)

    def kills(self) -> list[AuditEvent]:
        return [e for e in self.events if e.kind == "killed"]

    def alerts(self) -> list[AuditEvent]:
        return [e for e in self.events if e.kind in ("killed", "blocked", "alert")]

    def clear(self) -> None:
        self.events.clear()
        self.fastpath.reset()

    def __len__(self) -> int:
        return len(self.events)
