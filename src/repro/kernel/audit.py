"""Kernel audit log.

§3.4: on a failed check the kernel "terminates the process, logs the
system call, and alerts the administrator".  The audit log is the
administrator-visible record; attack tests and benchmarks assert
against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class AuditEvent:
    kind: str  # "killed" | "blocked" | "alert" | "info"
    pid: int
    program: str
    syscall: Optional[str]
    reason: str
    call_site: Optional[int] = None

    def render(self) -> str:
        site = f" site={self.call_site:#010x}" if self.call_site is not None else ""
        call = f" syscall={self.syscall}" if self.syscall else ""
        return f"[{self.kind}] pid={self.pid} {self.program}{call}{site}: {self.reason}"


@dataclass
class AuditLog:
    events: list[AuditEvent] = field(default_factory=list)

    def record(self, event: AuditEvent) -> None:
        self.events.append(event)

    def kills(self) -> list[AuditEvent]:
        return [e for e in self.events if e.kind == "killed"]

    def alerts(self) -> list[AuditEvent]:
        return [e for e in self.events if e.kind in ("killed", "blocked", "alert")]

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)
