"""The simulated operating system kernel.

Stands in for the paper's modified Linux kernel.  The pieces:

- :mod:`repro.kernel.vfs` -- an in-memory Unix-like filesystem with
  directories, permissions, and symlinks (symlinks matter for the §5.4
  filename-normalization discussion).
- :mod:`repro.kernel.syscalls` -- the system call table (80+ calls with
  Linux-flavoured numbers and errno conventions).
- :mod:`repro.kernel.process` -- processes: pid, cwd, fd table, brk,
  and the in-kernel authentication counter (the memory-checker nonce).
- :mod:`repro.kernel.kernel` -- the kernel object and its software
  trap handler.  The paper's entire kernel modification is 248 lines
  added to the trap handler plus a crypto library; our equivalents are
  :mod:`repro.kernel.auth` and :mod:`repro.crypto`.
- :mod:`repro.kernel.costs` -- the deterministic cycle-cost model,
  calibrated so unmodified system calls reproduce Table 4's baseline
  column.
- :mod:`repro.kernel.authcache` -- the per-process verification fast
  path (cached call-MAC checks; see DESIGN.md "Performance
  architecture").
- :mod:`repro.kernel.verifierjit` -- per-site verifier specialization
  (compiled SiteThunks riding on the fast path's invalidation
  machinery; see DESIGN.md "Verifier specialization").
"""

from repro.kernel.errors import Errno
from repro.kernel.vfs import Vfs, VfsError
from repro.kernel.audit import FastPathSnapshot, FastPathStats
from repro.kernel.authcache import VerifiedSiteCache
from repro.kernel.costs import CostModel
from repro.kernel.kernel import EnforcementMode, Kernel, RunResult
from repro.kernel.verifierjit import SiteThunk, VerifierJit

__all__ = [
    "CostModel",
    "EnforcementMode",
    "Errno",
    "FastPathSnapshot",
    "FastPathStats",
    "Kernel",
    "RunResult",
    "SiteThunk",
    "VerifiedSiteCache",
    "VerifierJit",
    "Vfs",
    "VfsError",
]
