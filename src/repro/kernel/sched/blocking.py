"""Control-flow signals between syscall handlers, kernel, and scheduler.

Three exceptions carry the multiprogramming subsystem's control
transfers.  They are deliberately free of imports so that both the
syscall layer and the CPU engines can raise/propagate them without
creating an import cycle.

The critical invariant is *verification atomicity*: by the time a
handler discovers it must block, the authenticated-call check has
already run to completion — including steps 3–5 of the §3.2 online
memory checker, which advance the per-process counter and re-MAC the
``lastBlock`` state.  A blocked call therefore must **never** re-execute
the trap instruction; only the *dispatch* (the handler body) is retried
when the wait condition clears.  :class:`ProcessBlocked` records
everything needed to complete the call without touching the trap again:
the syscall number, the trap PC (so the wake path can advance past the
``ASYS``), and the verification cycles that still need to be charged.
"""

from __future__ import annotations

from typing import Optional


class WouldBlock(Exception):
    """Raised by a syscall handler whose wait condition is not ready.

    Under a scheduler the kernel converts this into
    :class:`ProcessBlocked` and the task is parked.  In the synchronous
    single-process mode (plain ``Kernel.run``) there is nobody to wake
    us, so the kernel completes the call with ``fallback`` instead —
    which is chosen to match the pre-scheduler stub semantics, keeping
    single-process programs bit-compatible."""

    def __init__(self, wait: str, fallback: int = 0):
        super().__init__(f"would block on {wait}")
        self.wait = wait
        self.fallback = fallback


class ProcessBlocked(Exception):
    """A trap completed verification but its dispatch must wait.

    Propagates out of both execution engines with ``vm.pc`` still at
    the trap site (traps terminate basic blocks, so the batched
    accounting is already exact).  The scheduler parks the task; the
    wake path retries *only* the dispatch and then advances the PC past
    the trap, charging ``auth_cycles`` (the already-performed
    verification work) exactly once."""

    def __init__(
        self,
        wait: str,
        number: int,
        name: str,
        block_id: Optional[int],
        trap_pc: int,
    ):
        super().__init__(f"{name} blocked on {wait}")
        self.wait = wait
        self.number = number
        self.name = name
        self.block_id = block_id
        self.trap_pc = trap_pc
        #: Verification cycles the ASYS check consumed before the
        #: dispatch blocked; filled in by the kernel's trap handler.
        self.auth_cycles = 0


class ImageReplaced(Exception):
    """``execve`` under a scheduler replaced the task's VM in place.

    The old VM is dead; the scheduler re-queues the task, whose
    ``task.vm`` already points at the fresh image.  Instruction and
    cycle counters carry over to the new VM, so slice accounting and
    wall-clock budgets see one continuous process."""
