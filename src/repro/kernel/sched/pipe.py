"""Kernel pipe objects.

A :class:`Pipe` is a bounded FIFO byte buffer shared between file
descriptions.  Reader/writer endpoints are reference-counted so that
``dup``/``fork`` keep the EOF and EPIPE semantics right: a read on an
empty pipe returns 0 (EOF) only once *every* write end is closed, and a
write with no read ends left raises EPIPE.

Blocking is expressed with :class:`~repro.kernel.sched.blocking.WouldBlock`
and resolved by the scheduler; in synchronous single-process mode the
kernel falls back to the non-blocking result (read → 0, write →
unbounded buffer) so pre-scheduler guests behave exactly as before.
"""

from __future__ import annotations

from .blocking import WouldBlock

#: Kernel pipe capacity, matching the classic 64 KiB Linux default.
PIPE_CAPACITY = 65536


class Pipe:
    """A FIFO byte channel with reference-counted endpoints."""

    def __init__(self, ident: int, capacity: int = PIPE_CAPACITY):
        self.ident = ident
        self.capacity = capacity
        self.buffer = bytearray()
        self.readers = 0
        self.writers = 0

    def __repr__(self):  # pragma: no cover - debug aid
        return (
            f"Pipe(ident={self.ident}, buffered={len(self.buffer)}, "
            f"readers={self.readers}, writers={self.writers})"
        )

    @property
    def space(self) -> int:
        return self.capacity - len(self.buffer)

    def retain(self, writer: bool) -> None:
        if writer:
            self.writers += 1
        else:
            self.readers += 1

    def release(self, writer: bool) -> None:
        if writer:
            self.writers -= 1
        else:
            self.readers -= 1

    def read(self, count: int, blocking: bool) -> bytes:
        """Drain up to ``count`` bytes.

        Empty pipe: EOF (``b""``) once all writers are gone, otherwise
        block.  The synchronous fallback (read → 0 bytes) matches the
        old file-backed pipe, whose reads past the written extent also
        returned 0.
        """
        if not self.buffer:
            if self.writers <= 0:
                return b""
            if blocking:
                raise WouldBlock(f"pipe:{self.ident}:read", fallback=0)
            return b""
        data = bytes(self.buffer[:count])
        del self.buffer[: len(data)]
        return data

    def write(self, data: bytes, blocking: bool) -> int:
        """Append ``data``; returns bytes accepted.

        Raises ``BrokenPipe`` when no readers remain.  A full pipe
        blocks under a scheduler; in synchronous mode capacity is not
        enforced (there is no one to drain it), preserving the old
        unbounded file-backed behaviour.
        """
        if self.readers <= 0:
            raise BrokenPipe(self.ident)
        if not blocking:
            self.buffer.extend(data)
            return len(data)
        if self.space <= 0:
            raise WouldBlock(f"pipe:{self.ident}:write", fallback=0)
        accepted = data[: self.space]
        self.buffer.extend(accepted)
        if len(accepted) < len(data):
            # Partial write: the guest observes a short count and is
            # expected to loop; no blocking needed for the accepted part.
            pass
        return len(accepted)


class BrokenPipe(Exception):
    """Write on a pipe with no remaining read ends."""

    def __init__(self, ident: int):
        super().__init__(f"broken pipe {ident}")
        self.ident = ident
