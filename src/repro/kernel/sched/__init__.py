"""Multiprogramming subsystem: preemptive scheduling, real fork/wait,
kernel pipes, and per-process authentication-state isolation."""

from repro.kernel.sched.blocking import ImageReplaced, ProcessBlocked, WouldBlock
from repro.kernel.sched.pipe import PIPE_CAPACITY, BrokenPipe, Pipe
from repro.kernel.sched.scheduler import (
    MultiRunResult,
    PendingSyscall,
    Scheduler,
    Task,
    TaskState,
)

__all__ = [
    "BrokenPipe",
    "ImageReplaced",
    "MultiRunResult",
    "PIPE_CAPACITY",
    "PendingSyscall",
    "Pipe",
    "ProcessBlocked",
    "Scheduler",
    "Task",
    "TaskState",
    "WouldBlock",
]
