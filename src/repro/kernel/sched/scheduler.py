"""Preemptive round-robin scheduler over the kernel's processes.

The run queue holds pids; each slice runs one task for at most
``timeslice`` *instructions* (all engine configurations account
instructions identically, so the interleaving is bit-identical between
``interp``, ``threaded``, and ``threaded`` with block chaining and
superblocks).  Preemption happens at basic-block boundaries — the
threaded engine returns control only between blocks, and the
interpreter between instructions.  Chained successors and fused
superblocks are only entered when the remaining timeslice covers them
(the engine otherwise falls back to its dispatch loop and, for slices
shorter than one block, to single-stepping), so the preemption point
lands on the same boundary in every configuration.  Since every trap
terminates a block, an authenticated-call check is never split across
a context switch: verification is atomic with respect to scheduling by
construction.

Everything is deterministic: no randomness, FIFO wake polling, a
plain deque run queue, and an instruction-count timeslice.  Two runs
with the same programs and timeslice produce identical interleavings,
audit logs, and metrics — the CI determinism gate asserts exactly
that.

The scheduler owns no verification state.  Each task's
:class:`~repro.kernel.process.Process` carries its own ``auth_counter``
and its image carries its own lastBlock/lbMAC region, so a context
switch swaps authentication context implicitly; the per-pid fast-path
caches live in the kernel, keyed by pid.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum, unique
from typing import Callable, Optional

from repro.cpu.vm import VM, ExecutionFault, ProcessExit
from repro.kernel.process import Process

from .blocking import ImageReplaced, ProcessBlocked

#: Exit status for scheduler-imposed terminations (deadlock breaker,
#: instruction-budget exhaustion); matches the kernel's KILL_STATUS.
SCHED_KILL_STATUS = 128 + 9

#: Fault terminations (guest execution faults under a scheduler)
#: surface as a SIGSEGV-style status.
FAULT_STATUS = 128 + 11


@unique
class TaskState(Enum):
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    ZOMBIE = "zombie"  # exited, waiting to be reaped by the parent
    REAPED = "reaped"


@dataclass
class PendingSyscall:
    """A dispatch that blocked after verification completed.

    Only the handler body is retried on wake; the trap itself — and the
    §3.4 checks, which already advanced the auth counter — never
    re-execute.  ``auth_cycles`` is the verification cost still owed to
    the guest clock, charged exactly once at completion."""

    wait: str
    number: int
    name: str
    block_id: Optional[int]
    trap_pc: int
    auth_cycles: int


@dataclass
class Task:
    """One scheduled process."""

    pid: int
    process: Process
    vm: VM
    parent_pid: Optional[int] = None
    seq: int = 0
    state: TaskState = TaskState.RUNNABLE
    pending: Optional[PendingSyscall] = None
    #: Signal posted by another process's ``kill``; delivered at the
    #: next schedule point or wake poll.
    pending_signal: Optional[int] = None
    #: Times this task was switched in (context-switch granularity, not
    #: slice granularity: consecutive slices of the same pid count once).
    switches: int = 0
    exit_status: Optional[int] = None
    killed: bool = False
    kill_reason: str = ""
    #: Per-pid fast-path cache traffic, snapshotted at teardown (the
    #: cache itself is dropped with the address space).
    fastpath_hits: int = 0
    fastpath_misses: int = 0

    @property
    def alive(self) -> bool:
        return self.state in (TaskState.RUNNABLE, TaskState.BLOCKED)


@dataclass
class MultiRunResult:
    """Results of a multiprogrammed run, in spawn order."""

    results: list
    scheduler: "Scheduler"

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)


class Scheduler:
    """Deterministic preemptive round-robin over one kernel."""

    def __init__(
        self,
        kernel,
        timeslice: int = 5000,
        max_instructions: int = 200_000_000,
    ):
        if timeslice <= 0:
            raise ValueError("timeslice must be positive")
        self.kernel = kernel
        self.timeslice = timeslice
        #: Machine-wide instruction budget across all tasks; survivors
        #: are killed when it runs out (the multi-process analogue of
        #: the VM's budget fault).
        self.max_instructions = max_instructions
        self.tasks: dict[int, Task] = {}
        self._runq: deque[int] = deque()
        self._blocked: list[int] = []
        #: (pid, instructions consumed) per slice, in schedule order —
        #: the determinism check compares this list across runs.
        self.interleaving: list[tuple[int, int]] = []
        #: Test/attack hook invoked as ``on_switch(scheduler, task)``
        #: right after a context switch is charged, before the slice
        #: runs.  The cross-process attack scenarios use it to model an
        #: attacker acting between slices.
        self.on_switch: Optional[Callable[["Scheduler", Task], None]] = None
        self._last_pid: Optional[int] = None
        self._instructions = 0
        self._seq = 0
        kernel._scheduler = self

    # -- admission -----------------------------------------------------

    def adopt(self, process: Process, vm: VM, parent_pid: Optional[int] = None) -> Task:
        """Place an already-loaded process on the run queue."""
        task = Task(
            pid=process.pid,
            process=process,
            vm=vm,
            parent_pid=parent_pid,
            seq=self._seq,
        )
        self._seq += 1
        self.tasks[process.pid] = task
        self._runq.append(process.pid)
        return task

    def spawn(self, binary, argv=None, stdin: bytes = b"", cwd: str = "/") -> Task:
        """Load a binary and adopt it as a top-level task."""
        process, vm = self.kernel.load(binary, argv=argv, stdin=stdin, cwd=cwd)
        return self.adopt(process, vm)

    def perturb_runq(self, rotation: int = 1) -> None:
        """Deterministically rotate the run queue.

        The fault-injection battery's scheduler-perturbation faults use
        this (from an ``on_switch`` hook) to force different preemption
        orders: per-process results must be invariant under *any*
        run-queue order, so a rotation that changes an outcome is a
        detection-coverage failure, not a scheduling choice."""
        self._runq.rotate(rotation)

    # -- queries used by the kernel/syscall layer ----------------------

    def find_zombie(self, parent_pid: int, pid_spec: int):
        """wait4 support: returns a reapable child Task, ``None`` when
        there are no children at all, or the string ``"waiting"`` when
        children exist but none is a zombie yet."""
        children = [
            task
            for task in self.tasks.values()
            if task.parent_pid == parent_pid and task.state is not TaskState.REAPED
        ]
        if pid_spec > 0:
            children = [task for task in children if task.pid == pid_spec]
        if not children:
            return None
        for task in sorted(children, key=lambda t: t.seq):
            if task.state is TaskState.ZOMBIE:
                return task
        return "waiting"

    def post_signal(self, pid: int, sig: int) -> bool:
        """Cross-process kill: mark the target for termination at its
        next schedule point.  Returns False if no live target."""
        task = self.tasks.get(pid)
        if task is None:
            return False
        if task.state is TaskState.ZOMBIE:
            return True  # signalling a zombie is a no-op, not an error
        if not task.alive:
            return False
        task.pending_signal = sig
        return True

    # -- the loop ------------------------------------------------------

    def run(self) -> None:
        """Schedule until every task has exited."""
        metrics = self.kernel.metrics
        while self._runq or self._blocked:
            woke = self._wake_blocked()
            peak = len(self._runq)
            if peak > metrics.get("sched.runq_peak"):
                metrics.set("sched.runq_peak", peak)
            if not self._runq:
                if not self._blocked:
                    break
                if woke == 0:
                    # Every live task is blocked and a full wake poll
                    # moved nobody: nothing can ever make progress.
                    self._break_deadlock()
                continue
            pid = self._runq.popleft()
            task = self.tasks.get(pid)
            if task is None or task.state is not TaskState.RUNNABLE:
                continue
            self._run_slice(task)
            if self._instructions > self.max_instructions:
                self._kill_survivors("scheduler instruction budget exhausted")
                break

    # -- internals -----------------------------------------------------

    def _wake_blocked(self) -> int:
        """FIFO poll of blocked tasks: deliver pending signals, retry
        blocked dispatches.  Returns how many tasks changed state."""
        kernel = self.kernel
        metrics = kernel.metrics
        woke = 0
        still: list[int] = []
        for pid in self._blocked:
            task = self.tasks[pid]
            if task.state is not TaskState.BLOCKED:
                woke += 1
                continue
            if task.pending_signal is not None:
                self._deliver_signal(task)
                woke += 1
                continue
            try:
                completed = kernel.retry_blocked(task)
            except ProcessExit as exit_info:
                self._finish(task, exit_info.status, exit_info.killed, exit_info.reason)
                woke += 1
                continue
            if completed:
                task.state = TaskState.RUNNABLE
                self._runq.append(pid)
                metrics.inc("sched.wakeups")
                woke += 1
            else:
                still.append(pid)
        self._blocked = still
        return woke

    def _run_slice(self, task: Task) -> None:
        kernel = self.kernel
        metrics = kernel.metrics
        pid = task.pid
        if task.pending_signal is not None:
            self._deliver_signal(task)
            return
        if pid != self._last_pid:
            self._last_pid = pid
            task.switches += 1
            metrics.inc("sched.context_switches")
            metrics.inc(f"sched.switches.pid{pid}")
            if self.on_switch is not None:
                self.on_switch(self, task)
        rec = kernel.obs
        traced = rec.enabled
        if traced:
            depth = rec.open_spans
            rec.begin(f"pid{pid}", "sched")
        before = task.vm.instructions_executed
        try:
            task.vm.run_slice(self.timeslice)
        except ProcessBlocked as blocked:
            task.pending = PendingSyscall(
                wait=blocked.wait,
                number=blocked.number,
                name=blocked.name,
                block_id=blocked.block_id,
                trap_pc=blocked.trap_pc,
                auth_cycles=blocked.auth_cycles,
            )
            task.state = TaskState.BLOCKED
            self._blocked.append(pid)
            metrics.inc("sched.blocks")
        except ImageReplaced:
            # exec_replace already swapped task.vm; counters carried
            # over, so the consumed computation below stays exact.
            self._runq.append(pid)
            metrics.inc("sched.execs")
        except ExecutionFault as fault:
            self._finish(task, FAULT_STATUS, killed=True, reason=str(fault))
        else:
            if task.vm.exit_status is not None:
                self._finish(
                    task,
                    task.vm.exit_status,
                    task.vm.killed,
                    task.vm.kill_reason,
                )
            else:
                self._runq.append(pid)
                metrics.inc("sched.preemptions")
        finally:
            if traced:
                rec.close_to(depth)
        consumed = task.vm.instructions_executed - before
        self._instructions += consumed
        self.interleaving.append((pid, consumed))

    def _deliver_signal(self, task: Task) -> None:
        sig = task.pending_signal or 0
        task.pending_signal = None
        self.kernel.metrics.inc("sched.signal_kills")
        self._finish(
            task,
            128 + (sig & 0x7F),
            killed=True,
            reason=f"terminated by signal {sig}",
        )

    def _finish(self, task: Task, status: int, killed: bool, reason: str) -> None:
        """Exit path: close fds (releasing pipe endpoints so sibling
        readers see EOF), tear down kernel per-pid state, become a
        zombie for the parent to reap — or be auto-reaped when no live
        parent exists."""
        metrics = self.kernel.metrics
        task.exit_status = status
        task.killed = killed
        task.kill_reason = reason
        for fd in list(task.process.fds):
            task.process.close_fd(fd)
        self.kernel.release_process(task.process, task.vm, task)
        task.state = TaskState.ZOMBIE
        metrics.inc("sched.exits")
        # Reparenting: our children become orphans; orphan zombies are
        # reaped immediately (there will never be a waiter).
        for child in self.tasks.values():
            if child.parent_pid == task.pid:
                child.parent_pid = None
                if child.state is TaskState.ZOMBIE:
                    child.state = TaskState.REAPED
                    metrics.inc("sched.zombies_reaped")
        parent = (
            self.tasks.get(task.parent_pid) if task.parent_pid is not None else None
        )
        if parent is None or not parent.alive:
            task.state = TaskState.REAPED
        else:
            metrics.inc("sched.zombies")

    def _break_deadlock(self) -> None:
        """Nothing is runnable and nothing can wake: fail-stop every
        blocked task rather than spin forever."""
        from repro.kernel.audit import AuditEvent

        metrics = self.kernel.metrics
        for pid in list(self._blocked):
            task = self.tasks[pid]
            if task.state is not TaskState.BLOCKED:
                continue
            wait = task.pending.wait if task.pending else "?"
            reason = f"deadlock: blocked on {wait} with no runnable process"
            self.kernel.audit.record(
                AuditEvent(
                    kind="killed",
                    pid=task.pid,
                    program=task.process.name,
                    syscall=task.pending.name if task.pending else None,
                    reason=reason,
                )
            )
            metrics.inc("sched.deadlock_kills")
            self._finish(task, SCHED_KILL_STATUS, killed=True, reason=reason)
        self._blocked = []

    def _kill_survivors(self, reason: str) -> None:
        for task in list(self.tasks.values()):
            if task.alive:
                self._finish(task, SCHED_KILL_STATUS, killed=True, reason=reason)
        self._blocked = []
        self._runq.clear()
