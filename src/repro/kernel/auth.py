"""System call checking (§3.4) — the kernel-patch analogue.

The paper adds 248 lines to Linux's software trap handler to perform
three checks on every authenticated call:

1. check ``callMAC``;
2. check the integrity of each string argument named in ``polDes``;
3. check the control-flow policy (via the online memory checker).

If all pass, the call proceeds; otherwise the process is terminated,
the call is logged, and the administrator is alerted.  Unauthenticated
calls from protected binaries are likewise blocked.

This module is deliberately the *only* place that trusts nothing from
the application: every pointer it follows is treated as hostile, every
length is bounded, and every decision traces back to a MAC keyed with
material the application cannot read.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from repro.cpu.memory import MemoryFault
from repro.cpu.vm import VM
from repro.crypto import MacProvider
from repro.kernel.authcache import VerifiedSiteCache
from repro.kernel.costs import CostModel, mac_blocks
from repro.kernel.process import Process
from repro.obs import NULL_RECORDER, Recorder
from repro.policy.authstrings import read_authenticated_string
from repro.policy.descriptor import PolicyDescriptor
from repro.policy.encode import ParamEncoding, encode_policy, unpack_predecessor_set
from repro.policy.patterns import Pattern, match_with_hint
from repro.policy.record import (
    AuthRecord,
    pack_policy_state,
    read_auth_record,
    read_policy_state,
    state_mac_payload,
)

#: Cap on the length of a *runtime* (pattern-matched) string argument;
#: unlike AS arguments these carry no authenticated length, so the
#: kernel bounds its own scan.
MAX_RUNTIME_STRING = 4096

MAX_HINT_WORDS = 32


class AuthViolation(Exception):
    """An authenticated-system-call check failed; the process dies."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


#: Reason-string families for §3.4 violations, keyed by which check
#: tripped.  The fault-injection battery uses this to assert not just
#: *that* a corrupted run was killed but that the kill was correctly
#: attributed (a counter desync must die as a policy-state mismatch,
#: not as some accidental downstream fault).  Substring matching keeps
#: the reasons themselves free to carry per-site detail.
VIOLATION_FAMILIES: dict[str, tuple[str, ...]] = {
    "record": (
        "unreadable auth record",
        "bad pointer in authenticated call",
    ),
    "call-mac": ("call MAC mismatch", "unauthenticatable syscall number"),
    "string-auth": ("failed integrity check",),
    "policy-state": (
        "policy state MAC mismatch",
        "unreadable policy state",
        "unwritable policy state",
    ),
    "control-flow": ("control flow violation",),
    "pattern": (
        "does not match pattern",
        "undecodable pattern",
        "unreadable pattern argument",
        "hint block",
    ),
    "capability": ("capability violation",),
    "unauthenticated": (
        "unauthenticated system call",
        "unauthenticated binary",
    ),
}


def violation_family(reason: str) -> Optional[str]:
    """Classify a kill reason into its §3.4 check family (or None for
    reasons that did not come from the authenticated-call checker)."""
    for family, needles in VIOLATION_FAMILIES.items():
        if any(needle in reason for needle in needles):
            return family
    return None


@dataclass
class CheckResult:
    """Outcome of a successful check."""

    syscall_number: int
    block_id: int
    record: AuthRecord
    #: Total AES blocks MAC'd during the check (drives the cycle cost).
    mac_blocks: int
    cycles: int
    #: §5.3 capability constraint (verified-authentic): parameter
    #: bitmask and the permitted producing-site block ids.
    fd_mask: int = 0
    fd_allowed: frozenset = frozenset()
    #: Fast-path accounting: call-MAC cache probes this check resolved
    #: as hits/misses (0/0 when the kernel runs with fastpath disabled).
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def fastpath(self) -> bool:
        """True iff the call MAC was satisfied by the per-site cache."""
        return self.cache_hits > 0


class AuthChecker:
    """Stateless checker bound to the kernel's MAC provider."""

    def __init__(
        self,
        provider: MacProvider,
        costs: CostModel,
        recorder: Recorder = NULL_RECORDER,
    ):
        self._provider = provider
        self._costs = costs
        #: Observability hook.  Every use is guarded on
        #: ``recorder.enabled`` so the default NullRecorder costs one
        #: attribute load + branch per stage (see DESIGN.md
        #: "Observability").
        self._recorder = recorder

    # -- the three checks of §3.4 ---------------------------------------

    def check(
        self,
        vm: VM,
        process: Process,
        cache: Optional[VerifiedSiteCache] = None,
    ) -> CheckResult:
        """Validate the ASYS trap currently pending on ``vm``.

        ``cache`` (when the kernel enables the fast path) may satisfy
        the call-MAC comparison from a previously verified trap at the
        same site; everything counter-dependent and every string-content
        MAC is still checked in full.  Raises :class:`AuthViolation` if
        any check fails."""
        blocks = 0
        memory = vm.memory
        syscall_number = vm.regs[0]
        # The encoded call packs the number in 16 bits, so a trapped
        # value with high bits set could never have been MAC'd — yet
        # truncation would make it *verify* (and then dispatch on the
        # unauthenticated full value).  Out-of-domain numbers are
        # therefore proof of tampering in their own right; the fault
        # battery's register-tamper faults exercise exactly this.
        if syscall_number > 0xFFFF:
            raise AuthViolation(
                f"unauthenticatable syscall number {syscall_number:#x} "
                f"(exceeds the 16-bit encoded domain)"
            )
        call_site = vm.pc
        record_ptr = vm.regs[7]
        read_as = cache.read_as if cache is not None else read_authenticated_string

        # Observability: the four verification stages of the paper's
        # cost breakdown, as nested spans under the kernel's
        # "syscall-verify" root (the trap handler owns that span so the
        # verifier-JIT fast path and this full check share one span per
        # trap).  A violation aborts mid-stage; the kernel unwinds the
        # span stack (close_to) after the kill, so pairs always balance.
        rec = self._recorder
        traced = rec.enabled
        if traced:
            rec.begin("policy-decode", "verify")

        try:
            record = read_auth_record(memory, record_ptr)
        except MemoryFault as fault:
            raise AuthViolation(f"unreadable auth record: {fault}") from fault
        descriptor = record.descriptor

        # ---- Step 1: reconstruct the encoded call and check callMAC ----
        params: list[ParamEncoding] = []
        string_checks: list[tuple[int, object]] = []  # (index, AS)
        pattern_cursor = 0
        try:
            for index in range(6):
                is_pattern = descriptor.param_is_pattern(index)
                if not descriptor.param_constrained(index) and not is_pattern:
                    continue
                if descriptor.param_is_string(index):
                    if is_pattern:
                        address = record.pattern_ptrs[pattern_cursor]
                        pattern_cursor += 1
                    else:
                        address = vm.regs[1 + index]
                    auth_string = read_as(memory, address)
                    params.append(
                        ParamEncoding.auth_string(
                            index, address, auth_string.length, auth_string.mac
                        )
                    )
                    string_checks.append((index, auth_string))
                else:
                    params.append(ParamEncoding.immediate(index, vm.regs[1 + index]))

            predset_triple = None
            predset_as = None
            if descriptor.control_flow_constrained:
                predset_as = read_as(memory, record.predset_ptr)
                predset_triple = (
                    record.predset_ptr,
                    predset_as.length,
                    predset_as.mac,
                )

            capability_spec = None
            fd_allowed_as = None
            if descriptor.capability_tracked:
                fd_allowed_as = read_as(memory, record.fd_allowed_ptr)
                capability_spec = (
                    record.fd_mask,
                    (record.fd_allowed_ptr, fd_allowed_as.length, fd_allowed_as.mac),
                )
        except MemoryFault as fault:
            raise AuthViolation(f"bad pointer in authenticated call: {fault}") from fault

        encoded_call = encode_policy(
            descriptor,
            syscall_number,
            call_site,
            record.block_id,
            params,
            predset=predset_triple,
            lastblock_address=record.lastblock_ptr,
            capability=capability_spec,
        )
        if traced:
            rec.end()  # policy-decode
            rec.begin("mac-check", "verify")
        # Fast path: the encoded call is rebuilt from live state above,
        # so if it (and the presented MAC) are byte-identical to a pair
        # that already survived the full CMAC at this site, re-running
        # the CMAC can only reproduce the same success.
        cache_hits = 0
        cache_misses = 0
        if cache is not None and cache.probe(
            call_site, descriptor, encoded_call, record.call_mac
        ):
            cache_hits = 1
        else:
            if cache is not None:
                cache_misses = 1
            blocks += mac_blocks(len(encoded_call))
            if not self._provider.verify(encoded_call, record.call_mac):
                raise AuthViolation(
                    f"call MAC mismatch for syscall {syscall_number} "
                    f"at {call_site:#010x}"
                )
            if cache is not None:
                cache.store(call_site, descriptor, encoded_call, record.call_mac)

        # ---- Step 2: verify authenticated string contents ----
        if traced:
            rec.end()  # mac-check
            rec.begin("string-auth", "verify")
        for index, auth_string in string_checks:
            blocks += mac_blocks(auth_string.length)
            if not auth_string.verify(self._provider):
                raise AuthViolation(
                    f"string argument {index} failed integrity check "
                    f"at {call_site:#010x}"
                )
        if predset_as is not None:
            blocks += mac_blocks(predset_as.length)
            if not predset_as.verify(self._provider):
                raise AuthViolation(
                    f"predecessor set failed integrity check at {call_site:#010x}"
                )
        if fd_allowed_as is not None:
            blocks += mac_blocks(fd_allowed_as.length)
            if not fd_allowed_as.verify(self._provider):
                raise AuthViolation(
                    f"capability producer set failed integrity check "
                    f"at {call_site:#010x}"
                )

        # ---- Step 3: control flow (the online memory checker) ----
        if traced:
            rec.end()  # string-auth
        if descriptor.control_flow_constrained:
            assert predset_as is not None
            if traced:
                rec.begin("memory-checker", "verify")
            blocks += self._check_control_flow(
                vm, process, record, predset_as.content, call_site
            )
            if traced:
                rec.end()

        # ---- Extensions: pattern matching with proof hints (§5.1) ----
        if descriptor.pattern_params():
            # Runtime pattern arguments are string authentication work;
            # their span shares the "string-auth" stage bucket.
            if traced:
                rec.begin("string-auth", "verify")
            self._check_patterns(vm, descriptor, string_checks, call_site)
            if traced:
                rec.end()

        if cache_hits:
            cycles = self._costs.auth_cost_fastpath(blocks, cache_hits)
        else:
            cycles = self._costs.auth_cost_blocks(blocks)
        fd_allowed: frozenset = frozenset()
        if fd_allowed_as is not None:
            fd_allowed = unpack_predecessor_set(fd_allowed_as.content)
        return CheckResult(
            syscall_number=syscall_number,
            block_id=record.block_id,
            record=record,
            mac_blocks=blocks,
            cycles=cycles,
            fd_mask=record.fd_mask,
            fd_allowed=fd_allowed,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
        )

    # -- control flow -----------------------------------------------------

    def _check_control_flow(
        self,
        vm: VM,
        process: Process,
        record: AuthRecord,
        predset_content: bytes,
        call_site: int,
    ) -> int:
        """§3.4's five control-flow steps; returns AES blocks used."""
        blocks = 0
        memory = vm.memory
        try:
            last_block, lb_mac = read_policy_state(memory, record.lastblock_ptr)
        except MemoryFault as fault:
            raise AuthViolation(f"unreadable policy state: {fault}") from fault

        # 1. lbMAC == MAC(lastBlock + counter)?
        payload = state_mac_payload(last_block, process.auth_counter)
        blocks += mac_blocks(len(payload))
        if not self._provider.verify(payload, lb_mac):
            raise AuthViolation(
                f"policy state MAC mismatch at {call_site:#010x} "
                f"(replay or corruption of lastBlock)"
            )

        # 2. lastBlock in predSet?
        predecessors = unpack_predecessor_set(predset_content)
        if last_block not in predecessors:
            raise AuthViolation(
                f"control flow violation at {call_site:#010x}: block "
                f"{last_block} not a permitted predecessor of block "
                f"{record.block_id}"
            )

        # 3-5. advance the nonce, update lastBlock, re-MAC.
        process.auth_counter += 1
        new_payload = state_mac_payload(record.block_id, process.auth_counter)
        new_mac = self._provider.tag(new_payload)
        blocks += mac_blocks(len(new_payload))
        try:
            memory.write(
                record.lastblock_ptr,
                pack_policy_state(record.block_id, new_mac),
                force=True,
            )
        except MemoryFault as fault:
            raise AuthViolation(f"unwritable policy state: {fault}") from fault
        return blocks

    # -- patterns -----------------------------------------------------------

    def _check_patterns(
        self,
        vm: VM,
        descriptor: PolicyDescriptor,
        string_checks: list,
        call_site: int,
    ) -> None:
        """Verify pattern-constrained arguments using the r8 hint block."""
        hints = self._read_hints(vm)
        as_by_index = dict(string_checks)
        hint_cursor = 0
        for index in descriptor.pattern_params():
            pattern_as = as_by_index[index]
            try:
                pattern = Pattern.parse(pattern_as.content.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as err:
                raise AuthViolation(f"undecodable pattern: {err}") from err
            try:
                argument = vm.memory.read_cstring(
                    vm.regs[1 + index], MAX_RUNTIME_STRING, force=True
                )
            except MemoryFault as fault:
                raise AuthViolation(
                    f"unreadable pattern argument {index}: {fault}"
                ) from fault
            slots = pattern.hint_slots
            hint = hints[hint_cursor : hint_cursor + slots]
            hint_cursor += slots
            if len(hint) != slots or not match_with_hint(pattern, argument, hint):
                raise AuthViolation(
                    f"argument {index} does not match pattern "
                    f"{pattern.source!r} at {call_site:#010x}"
                )

    def _read_hints(self, vm: VM) -> tuple[int, ...]:
        return read_hint_words(vm)


def read_hint_words(vm: VM) -> tuple[int, ...]:
    """Read the r8 proof-hint block (shared by the generic checker and
    the verifier-JIT thunks; both must bound and fault identically)."""
    hint_ptr = vm.regs[8]
    if not hint_ptr:
        return ()
    try:
        count = vm.memory.read_u32(hint_ptr, force=True)
        if count > MAX_HINT_WORDS:
            raise AuthViolation(f"oversized hint block ({count} words)")
        raw = vm.memory.read(hint_ptr + 4, 4 * count, force=True)
    except MemoryFault as fault:
        raise AuthViolation(f"unreadable hint block: {fault}") from fault
    return tuple(
        struct.unpack_from("<I", raw, 4 * i)[0] for i in range(count)
    )
