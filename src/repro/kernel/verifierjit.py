"""Per-site verifier specialization: a threaded-code JIT for §3.4.

The execution engines specialize *CPU* work per basic block (PR 2/6);
this module applies the same move to the kernel's verification path.
The paper's per-call-site policies are almost entirely static — the
auth record, the encoded policy, the authenticated strings, and the
predecessor set are burned into read-only sections at install time —
yet the generic :class:`repro.kernel.auth.AuthChecker` re-parses and
re-encodes all of them on every trap.  SFIP and SysPart exploit the
same staticness with precomputed per-site/per-phase tables; here we
compile it away.

On the first *fully verified* trap at a ``(process, call site)`` pair
the kernel asks :class:`VerifierJit` to compile a :class:`SiteThunk`:
a pre-bound verifier that inlines exactly the checks that site needs —

- the record parse, parameter walk, and encoded-call reconstruction
  collapse into direct register comparisons against the verified
  values (a site with no string arguments never touches string-auth
  code at all; a site with no constant arguments runs no comparison
  loop);
- the predecessor-set decode collapses into a pre-resolved
  ``frozenset`` membership probe;
- the expected MAC material (record bytes, AS headers and contents,
  the pattern objects of §5.1) is covered by *write-version guards* on
  every memory region the full verification read, instead of being
  re-read and re-MAC'd.

What stays live on every thunk execution — exactly the pieces the
fast-path cache also refuses to cache — is everything bound to the
per-process counter: the lastBlock/lbMAC state is read from guest
memory, MAC-verified against the current counter, probed against the
predecessor set, then advanced and re-MAC'd; pattern-constrained
runtime arguments are re-matched against live memory and r8 hints.

Soundness mirrors the block-chaining pre-image invalidation story
(DESIGN.md "Execution engines"): every byte the thunk *assumes* was
covered by one full cryptographic verification, and any store into a
region holding such bytes — legitimate or hostile — bumps that
region's write version, fails the guard, drops the thunk, and falls
back to the generic checker.  A thunk therefore accepts a trap iff the
generic checker (with a warm fast-path cache) would accept it, and it
never raises: *any* divergence returns ``None`` and the slow path
reproduces the exact :class:`~repro.kernel.auth.AuthViolation` the
un-JITted kernel raises.

Cycle accounting is bit-identical to the fast-path-hit cost the
generic checker charges (same AES-block count, same
``auth_cost_fastpath`` formula), so enabling or disabling the JIT
changes host wall-clock only, never simulated time.

Thunks are per-process (the partition lives and dies with the pid,
like the :class:`~repro.kernel.authcache.VerifiedSiteCache`): exit and
execve drop the partition, fork children start empty — a sibling's
thunk is never reused, so the cross-process counter divergence that
isolates the fast-path cache isolates thunks by construction too.
``Kernel(verifier_jit=False)`` / ``--no-verifier-jit`` is the escape
hatch, mirroring ``--no-fastpath`` and ``--no-chain``.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.cpu.memory import MemoryFault
from repro.cpu.vm import VM
from repro.crypto import MacProvider
from repro.kernel.auth import (
    MAX_RUNTIME_STRING,
    AuthViolation,
    CheckResult,
    read_hint_words,
)
from repro.kernel.authcache import VerifiedSiteCache
from repro.kernel.costs import CostModel, mac_blocks
from repro.kernel.process import Process
from repro.obs import NULL_RECORDER, MetricsRegistry, Recorder
from repro.policy.authstrings import AS_HEADER_SIZE
from repro.policy.encode import unpack_predecessor_set
from repro.policy.patterns import Pattern, match_with_hint
from repro.policy.record import POLSTATE_SIZE, AuthRecord

#: lastBlock/lbMAC payload layout (see ``state_mac_payload``); packed
#: through a pre-compiled Struct so the hot path skips format parsing.
_STATE_PAYLOAD = struct.Struct("<IQ")
_LASTBLOCK = struct.Struct("<I")


class _Uncompilable(Exception):
    """Site cannot be specialized; the generic path serves it."""


class SiteThunk:
    """One compiled per-site verifier (see module docstring).

    Everything here is immutable after compilation; per-call state
    (the counter, the polstate bytes, runtime pattern arguments) is
    read live in :meth:`VerifierJit.execute`.
    """

    __slots__ = (
        "syscall_number",
        "record_ptr",
        "guards",
        "reg_checks",
        "patterns",
        "control",
        "record",
        "block_id",
        "blocks",
        "cycles",
        "fd_mask",
        "fd_allowed",
    )

    def __init__(
        self,
        syscall_number: int,
        record_ptr: int,
        guards: tuple,
        reg_checks: tuple,
        patterns: tuple,
        control: Optional[tuple],
        record: AuthRecord,
        blocks: int,
        cycles: int,
        fd_mask: int,
        fd_allowed: frozenset,
    ):
        self.syscall_number = syscall_number
        self.record_ptr = record_ptr
        #: ((region, version), ...) — every region one full verification
        #: read policy material from; any mismatch voids the thunk.
        self.guards = guards
        #: ((register index, expected value), ...) — the encoded-call
        #: reconstruction, collapsed to equality checks.
        self.reg_checks = reg_checks
        #: ((register index, Pattern, hint slots), ...) for §5.1 sites.
        self.patterns = patterns
        #: (lastblock_ptr, predecessor frozenset, packed block id) for
        #: control-flow-constrained sites, else None.
        self.control = control
        self.record = record
        self.block_id = record.block_id
        self.blocks = blocks
        self.cycles = cycles
        self.fd_mask = fd_mask
        self.fd_allowed = fd_allowed


class VerifierJit:
    """The per-process thunk partition."""

    #: Site cap, matching VerifiedSiteCache: overflow is pathology and
    #: answered with a full flush, never an eviction policy.
    MAX_SITES = 4096

    #: A site whose guards keep failing (its policy material lives in
    #: memory that is legitimately written) stops being recompiled
    #: after this many invalidations — the generic path serves it.
    MAX_RECOMPILES = 8

    def __init__(
        self,
        provider: MacProvider,
        costs: CostModel,
        metrics: Optional[MetricsRegistry] = None,
        recorder: Recorder = NULL_RECORDER,
    ):
        self._provider = provider
        self._costs = costs
        self._metrics = metrics
        self._recorder = recorder
        self._thunks: dict[int, SiteThunk] = {}
        self._invalidations: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._thunks)

    def thunk_at(self, call_site: int) -> Optional[SiteThunk]:
        """Test/introspection hook: the compiled thunk for a site."""
        return self._thunks.get(call_site)

    # -- the fast path ---------------------------------------------------

    def execute(
        self,
        vm: VM,
        process: Process,
        cache: Optional[VerifiedSiteCache] = None,
    ) -> Optional[CheckResult]:
        """Run the compiled verifier for the pending trap, if any.

        Returns a :class:`CheckResult` identical to what the generic
        checker's fast-path-hit branch would produce, or ``None`` to
        fall back.  Never raises and never mutates state (counter,
        polstate) unless every check has already passed."""
        thunk = self._thunks.get(vm.pc)
        if thunk is None:
            return None
        for region, version in thunk.guards:
            if region.version != version:
                # Policy material was written since compilation —
                # legitimately or not.  Void the thunk; the generic
                # checker re-reads live memory and decides.
                self._drop(vm.pc)
                return None
        regs = vm.regs
        if regs[0] != thunk.syscall_number or regs[7] != thunk.record_ptr:
            return None
        for index, expected in thunk.reg_checks:
            if regs[index] != expected:
                return None
        memory = vm.memory
        counter = process.auth_counter
        control = thunk.control
        if control is not None:
            lastblock_ptr, predecessors, block_prefix = control
            try:
                state = memory.read(lastblock_ptr, POLSTATE_SIZE, force=True)
            except MemoryFault:
                return None
            (last_block,) = _LASTBLOCK.unpack_from(state, 0)
            payload = _STATE_PAYLOAD.pack(
                last_block, counter & 0xFFFFFFFFFFFFFFFF
            )
            if not self._provider.verify(payload, bytes(state[4:])):
                return None  # replay/corruption; slow path fail-stops
            if last_block not in predecessors:
                return None  # control-flow violation; slow path reports
        if thunk.patterns:
            try:
                hints = read_hint_words(vm)
            except AuthViolation:
                return None
            cursor = 0
            for index, pattern, slots in thunk.patterns:
                try:
                    argument = memory.read_cstring(
                        regs[index], MAX_RUNTIME_STRING, force=True
                    )
                except MemoryFault:
                    return None
                hint = hints[cursor : cursor + slots]
                cursor += slots
                if len(hint) != slots or not match_with_hint(
                    pattern, argument, hint
                ):
                    return None
        # Every check passed; commit in the generic checker's order but
        # only after nothing can fail, so a fallback never re-runs the
        # memory checker against half-advanced state.
        if control is not None:
            new_counter = counter + 1
            new_mac = self._provider.tag(
                _STATE_PAYLOAD.pack(
                    thunk.block_id, new_counter & 0xFFFFFFFFFFFFFFFF
                )
            )
            try:
                memory.write(lastblock_ptr, block_prefix + new_mac, force=True)
            except MemoryFault:
                return None  # unwritable polstate; slow path fail-stops
            process.auth_counter = new_counter
        if cache is not None:
            cache.hits += 1
        metrics = self._metrics
        if metrics is not None:
            metrics.inc("verifier.thunk_hits")
        rec = self._recorder
        if rec.enabled:
            rec.inc("verifier.thunk_hits")
        return CheckResult(
            syscall_number=thunk.syscall_number,
            block_id=thunk.block_id,
            record=thunk.record,
            mac_blocks=thunk.blocks,
            cycles=thunk.cycles,
            fd_mask=thunk.fd_mask,
            fd_allowed=thunk.fd_allowed,
            cache_hits=1,
            cache_misses=0,
        )

    # -- compilation -----------------------------------------------------

    def compile_site(
        self,
        vm: VM,
        process: Process,
        result: CheckResult,
        cache: Optional[VerifiedSiteCache] = None,
    ) -> Optional[SiteThunk]:
        """Specialize the site of the trap that ``result`` just fully
        verified.  Reads the same policy material the check read (memoized
        through the AS cache) and snapshots the write version of every
        region it came from."""
        call_site = vm.pc
        if self._invalidations.get(call_site, 0) >= self.MAX_RECOMPILES:
            return None
        rec = self._recorder
        traced = rec.enabled
        if traced:
            rec.begin("verifier-compile", "verify")
        try:
            thunk = self._build(vm, result, cache)
        except (_Uncompilable, MemoryFault):
            thunk = None
        finally:
            if traced:
                rec.end()
        if thunk is None:
            return None
        if len(self._thunks) >= self.MAX_SITES:
            self._note_invalidated(len(self._thunks))
            self._thunks.clear()
        self._thunks[call_site] = thunk
        metrics = self._metrics
        if metrics is not None:
            metrics.inc("verifier.thunks_compiled")
        if traced:
            rec.inc("verifier.thunks_compiled")
        return thunk

    def _build(
        self, vm: VM, result: CheckResult, cache: Optional[VerifiedSiteCache]
    ) -> SiteThunk:
        record = result.record
        descriptor = record.descriptor
        memory = vm.memory
        regs = vm.regs
        record_ptr = regs[7]
        read_as = cache.read_as if cache is not None else None
        if read_as is None:
            from repro.policy.authstrings import read_authenticated_string

            def read_as(mem, address):
                return read_authenticated_string(mem, address)

        guards: dict[int, tuple] = {}

        def guard(address: int) -> None:
            region = memory.region_at(address)  # MemoryFault if unmapped
            guards[id(region)] = (region, region.version)

        def guard_as(address: int, length: int) -> None:
            guard(address - AS_HEADER_SIZE)
            guard(address)
            if length:
                guard(address + length - 1)

        guard(record_ptr)
        guard(record_ptr + record.size - 1)

        reg_checks: list[tuple[int, int]] = []
        patterns: list[tuple[int, Pattern, int]] = []
        blocks = 0
        pattern_cursor = 0
        for index in range(6):
            is_pattern = descriptor.param_is_pattern(index)
            if not descriptor.param_constrained(index) and not is_pattern:
                continue
            if descriptor.param_is_string(index):
                if is_pattern:
                    address = record.pattern_ptrs[pattern_cursor]
                    pattern_cursor += 1
                else:
                    address = regs[1 + index]
                    reg_checks.append((1 + index, address))
                auth_string = read_as(memory, address)
                blocks += mac_blocks(auth_string.length)
                guard_as(address, auth_string.length)
                if is_pattern:
                    try:
                        pattern = Pattern.parse(
                            auth_string.content.decode("utf-8")
                        )
                    except (UnicodeDecodeError, ValueError) as err:
                        raise _Uncompilable(str(err)) from err
                    patterns.append((1 + index, pattern, pattern.hint_slots))
            else:
                reg_checks.append((1 + index, regs[1 + index]))

        control = None
        if descriptor.control_flow_constrained:
            predset_as = read_as(memory, record.predset_ptr)
            blocks += mac_blocks(predset_as.length)
            guard_as(record.predset_ptr, predset_as.length)
            predecessors = unpack_predecessor_set(predset_as.content)
            blocks += 2 * mac_blocks(_STATE_PAYLOAD.size)
            control = (
                record.lastblock_ptr,
                predecessors,
                _LASTBLOCK.pack(record.block_id),
            )

        fd_allowed: frozenset = frozenset()
        if descriptor.capability_tracked:
            fd_as = read_as(memory, record.fd_allowed_ptr)
            blocks += mac_blocks(fd_as.length)
            guard_as(record.fd_allowed_ptr, fd_as.length)
            fd_allowed = unpack_predecessor_set(fd_as.content)

        return SiteThunk(
            syscall_number=result.syscall_number,
            record_ptr=record_ptr,
            guards=tuple(guards.values()),
            reg_checks=tuple(reg_checks),
            patterns=tuple(patterns),
            control=control,
            record=record,
            blocks=blocks,
            cycles=self._costs.auth_cost_fastpath(blocks, 1),
            fd_mask=record.fd_mask,
            fd_allowed=fd_allowed,
        )

    # -- lifecycle -------------------------------------------------------

    def _drop(self, call_site: int) -> None:
        del self._thunks[call_site]
        self._invalidations[call_site] = (
            self._invalidations.get(call_site, 0) + 1
        )
        self._note_invalidated(1)

    def _note_invalidated(self, count: int) -> None:
        metrics = self._metrics
        if metrics is not None:
            metrics.inc("verifier.thunks_invalidated", count)
        rec = self._recorder
        if rec.enabled:
            rec.inc("verifier.thunks_invalidated", count)

    def invalidate(self) -> int:
        """Drop every thunk (process exit/execve); returns the count.

        The caller owns the ``verifier.thunks_invalidated`` accounting
        for teardown (it aggregates across the whole partition)."""
        dropped = len(self._thunks)
        self._thunks.clear()
        self._invalidations.clear()
        return dropped
