"""The loopback socket model: sockets, stream connections, datagrams.

Everything here is deterministic by construction: socket idents come
from a per-kernel counter, the port table is a plain dict keyed by
``(type, address)`` strings, accept queues and datagram queues are
FIFO, and there is no notion of time — blocking is expressed with
:class:`~repro.kernel.sched.blocking.WouldBlock` and resolved by the
scheduler's FIFO wake poll, exactly like pipes.  Two runs with the
same programs and timeslice therefore produce identical connection
orders, transfer sizes, and interleavings on every engine config.

Addresses are NUL-terminated ASCII strings (e.g. ``"echo:7777"``)
rather than packed ``sockaddr`` structs: a constant address in
``.rodata`` becomes an installer-authenticated string parameter of the
``bind``/``connect`` call site, which is the point of the exercise —
the *name a server listens on* is part of its signed policy.

Stream semantics mirror the kernel pipe object (bounded buffer,
refcounted ends, writer-close EOF, reader-close EPIPE analog) but per
direction: a :class:`Connection` is two bounded byte queues, one per
flow direction, with per-side close and shutdown flags.  In
synchronous single-process mode (no scheduler) buffers are unbounded
and empty reads return 0 bytes, matching the pipe fallback contract.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.kernel.errors import Errno
from repro.kernel.sched.blocking import WouldBlock
from repro.kernel.vfs import VfsError

#: Address/protocol families (Linux numbering).
AF_UNIX = 1
AF_INET = 2

#: Socket types.
SOCK_STREAM = 1
SOCK_DGRAM = 2

#: shutdown() directions.
SHUT_RD = 0
SHUT_WR = 1
SHUT_RDWR = 2

#: Per-direction stream buffer capacity.  Smaller than the 64 KiB pipe
#: so netserver-scale request streams actually exercise the
#: full-buffer -> park -> drain -> wake path under a scheduler.
SOCK_CAPACITY = 16384

#: Hard ceiling on listen() backlogs (SOMAXCONN analog).
MAX_BACKLOG = 64

#: Bounded datagram queue depth for bound SOCK_DGRAM sockets.
DGRAM_QUEUE_MAX = 64


class SendOnShutdown(Exception):
    """Send on a connection whose outbound direction is gone (local
    SHUT_WR, or the peer closed/SHUT_RD its receive side) — the EPIPE
    analog, mirroring :class:`~repro.kernel.sched.pipe.BrokenPipe`."""

    def __init__(self, ident: int):
        super().__init__(f"send on shut-down connection {ident}")
        self.ident = ident


class ConnectionReset(Exception):
    """Receive on a connection torn down with unread inbound data
    discarded (peer closed while we had not drained)."""

    def __init__(self, ident: int):
        super().__init__(f"connection {ident} reset")
        self.ident = ident


class Connection:
    """One established stream: two bounded FIFO byte queues.

    ``buffers[i]`` holds bytes flowing *toward* side ``i``.  Side 0 is
    the connecting client, side 1 the accepted server end.  Close and
    shutdown are per side; data queued before a close stays deliverable
    (TCP-like graceful close), after which the reader sees EOF.
    """

    def __init__(self, ident: int, capacity: int = SOCK_CAPACITY):
        self.ident = ident
        self.capacity = capacity
        self.buffers = (bytearray(), bytearray())
        self.open_ends = [True, True]
        self.rd_shutdown = [False, False]
        self.wr_shutdown = [False, False]

    def __repr__(self):  # pragma: no cover - debug aid
        return (
            f"Connection(ident={self.ident}, "
            f"c2s={len(self.buffers[1])}, s2c={len(self.buffers[0])}, "
            f"open={self.open_ends})"
        )

    def space_toward(self, side: int) -> int:
        return self.capacity - len(self.buffers[side])

    def send(self, side: int, data: bytes, blocking: bool) -> int:
        """Queue ``data`` toward the peer; returns bytes accepted.

        A full buffer blocks under a scheduler (the guest loops on the
        short count for the remainder); in synchronous mode capacity is
        not enforced — nobody could ever drain it — matching the pipe
        fallback contract.
        """
        peer = 1 - side
        if self.wr_shutdown[side] or not self.open_ends[side]:
            raise SendOnShutdown(self.ident)
        if not self.open_ends[peer] or self.rd_shutdown[peer]:
            raise SendOnShutdown(self.ident)
        if not blocking:
            self.buffers[peer].extend(data)
            return len(data)
        space = self.space_toward(peer)
        if space <= 0:
            raise WouldBlock(f"sock:{self.ident}:send", fallback=0)
        accepted = data[:space]
        self.buffers[peer].extend(accepted)
        return len(accepted)

    def recv(self, side: int, count: int, blocking: bool) -> bytes:
        """Drain up to ``count`` bytes flowing toward ``side``.

        Empty queue: EOF (``b""``) once the peer can never send again
        (closed or SHUT_WR), otherwise block.  The synchronous fallback
        (0 bytes) matches pipes.
        """
        if self.rd_shutdown[side]:
            return b""
        buffer = self.buffers[side]
        if not buffer:
            peer = 1 - side
            if not self.open_ends[peer] or self.wr_shutdown[peer]:
                return b""
            if blocking:
                raise WouldBlock(f"sock:{self.ident}:recv", fallback=0)
            return b""
        data = bytes(buffer[:count])
        del buffer[: len(data)]
        return data

    def shutdown(self, side: int, how: int) -> None:
        if how in (SHUT_RD, SHUT_RDWR):
            self.rd_shutdown[side] = True
            self.buffers[side].clear()
        if how in (SHUT_WR, SHUT_RDWR):
            self.wr_shutdown[side] = True

    def close(self, side: int) -> None:
        """Final close of one side: unread inbound data is discarded;
        in-flight outbound data stays deliverable to the peer."""
        self.open_ends[side] = False
        self.buffers[side].clear()

    # -- readiness (select/poll) ---------------------------------------

    def recv_ready(self, side: int) -> bool:
        if self.rd_shutdown[side] or self.buffers[side]:
            return True
        peer = 1 - side
        return not self.open_ends[peer] or self.wr_shutdown[peer]

    def send_ready(self, side: int) -> bool:
        peer = 1 - side
        if self.wr_shutdown[side]:
            return True  # send would fail immediately: that is "ready"
        if not self.open_ends[peer] or self.rd_shutdown[peer]:
            return True
        return self.space_toward(peer) > 0


class ListenQueue:
    """A listening socket's bounded accept backlog (FIFO)."""

    def __init__(self, ident: int, address: str, backlog: int):
        self.ident = ident
        self.address = address
        self.backlog = max(1, min(backlog, MAX_BACKLOG))
        self.pending: deque[Connection] = deque()
        self.open = True

    def __repr__(self):  # pragma: no cover - debug aid
        return (
            f"ListenQueue(ident={self.ident}, address={self.address!r}, "
            f"pending={len(self.pending)}/{self.backlog})"
        )


class Socket:
    """Kernel-side socket object shared by duplicated descriptors.

    ``dup``/``fork`` share one :class:`Socket` via ``refs`` (the POSIX
    open-file-description model); the underlying endpoint is torn down
    only when the last descriptor goes away.
    """

    def __init__(self, stack: "NetStack", ident: int, domain: int, type: int):
        self.stack = stack
        self.ident = ident
        self.domain = domain
        self.type = type
        self.refs = 1
        #: Bound local address, once bind() has claimed it.
        self.address: Optional[str] = None
        #: Default peer address for connected datagram sockets.
        self.peer_address: Optional[str] = None
        #: Listening state (stream only).
        self.listener: Optional[ListenQueue] = None
        #: Established stream endpoint (and which side we are).
        self.conn: Optional[Connection] = None
        self.side: int = 0
        #: FIFO of (source address, payload) for bound datagram sockets.
        self.dgrams: deque = deque()
        self.closed = False

    def __repr__(self):  # pragma: no cover - debug aid
        kind = (
            "listen" if self.listener is not None
            else "conn" if self.conn is not None
            else "fresh"
        )
        return f"Socket(ident={self.ident}, {kind}, refs={self.refs})"

    @property
    def connected(self) -> bool:
        return self.conn is not None

    @property
    def listening(self) -> bool:
        return self.listener is not None

    def retain(self) -> None:
        self.refs += 1

    def release(self) -> None:
        self.refs -= 1
        if self.refs <= 0 and not self.closed:
            self.closed = True
            self.stack._teardown(self)


class NetStack:
    """Per-kernel loopback network state: the port table and counters.

    One namespace per socket type: a stream listener and a bound
    datagram socket may share an address string without conflict,
    matching TCP/UDP port independence.
    """

    def __init__(self, metrics=None):
        self.metrics = metrics
        #: (type, address) -> bound Socket (listener or dgram receiver).
        self.ports: dict[tuple, Socket] = {}
        self._next_ident = 0

    # -- bookkeeping ---------------------------------------------------

    def _ident(self) -> int:
        self._next_ident += 1
        return self._next_ident

    def _inc(self, name: str, value: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, value)

    # -- socket lifecycle ----------------------------------------------

    def create(self, domain: int, type: int) -> Socket:
        sock = Socket(self, self._ident(), domain, type)
        self._inc("net.sockets_created")
        return sock

    def _teardown(self, sock: Socket) -> None:
        """Last descriptor gone: free the port, reset the backlog, or
        close our side of the connection (peer sees EOF / EPIPE)."""
        if sock.address is not None:
            key = (sock.type, sock.address)
            if self.ports.get(key) is sock:
                del self.ports[key]
        if sock.listener is not None:
            sock.listener.open = False
            # Connections the server never accepted: close the server
            # side so parked clients wake to EOF instead of hanging.
            while sock.listener.pending:
                sock.listener.pending.popleft().close(1)
        if sock.conn is not None:
            sock.conn.close(sock.side)
        sock.dgrams.clear()
        self._inc("net.sockets_closed")

    # -- naming --------------------------------------------------------

    def bind(self, sock: Socket, address: str) -> None:
        if sock.connected or sock.listening or sock.address is not None:
            raise VfsError(Errno.EINVAL)
        if not address:
            raise VfsError(Errno.EINVAL)
        key = (sock.type, address)
        if key in self.ports:
            raise VfsError(Errno.EADDRINUSE)
        self.ports[key] = sock
        sock.address = address
        self._inc("net.binds")

    def listen(self, sock: Socket, backlog: int) -> None:
        if sock.type != SOCK_STREAM:
            raise VfsError(Errno.EOPNOTSUPP)
        if sock.connected:
            raise VfsError(Errno.EINVAL)
        if sock.address is None:
            # No ephemeral auto-bind: a listener's name must be a real
            # (policy-visible) address supplied via bind().
            raise VfsError(Errno.EDESTADDRREQ)
        if sock.listener is None:
            sock.listener = ListenQueue(sock.ident, sock.address, backlog)
            self._inc("net.listens")
        else:
            sock.listener.backlog = max(1, min(backlog, MAX_BACKLOG))

    # -- stream establishment ------------------------------------------

    def connect(self, sock: Socket, address: str, blocking: bool) -> None:
        """Establish a stream to ``address`` (handshake completes at
        connect time; accept() later hands the server its side, as with
        a real SYN queue).  A full backlog blocks the connector."""
        if sock.listening:
            raise VfsError(Errno.EINVAL)
        if sock.type == SOCK_DGRAM:
            sock.peer_address = address  # default destination only
            return
        if sock.connected:
            raise VfsError(Errno.EISCONN)
        target = self.ports.get((SOCK_STREAM, address))
        if target is None or target.listener is None or not target.listener.open:
            self._inc("net.connect_refused")
            raise VfsError(Errno.ECONNREFUSED)
        queue = target.listener
        if blocking and len(queue.pending) >= queue.backlog:
            raise WouldBlock(
                f"sock:{queue.ident}:connect",
                fallback=Errno.EAGAIN.as_result(),
            )
        conn = Connection(self._ident())
        sock.conn = conn
        sock.side = 0
        sock.peer_address = address
        queue.pending.append(conn)
        self._inc("net.connections")

    def accept(self, sock: Socket, blocking: bool) -> Socket:
        if sock.listener is None:
            raise VfsError(Errno.EINVAL)
        queue = sock.listener
        if not queue.pending:
            if blocking:
                raise WouldBlock(
                    f"sock:{queue.ident}:accept",
                    fallback=Errno.EAGAIN.as_result(),
                )
            raise VfsError(Errno.EAGAIN)
        conn = queue.pending.popleft()
        child = Socket(self, self._ident(), sock.domain, sock.type)
        child.conn = conn
        child.side = 1
        child.address = sock.address
        self._inc("net.accepts")
        return child

    # -- datagrams -----------------------------------------------------

    def send_dgram(self, sock: Socket, address: str, data: bytes, blocking: bool) -> int:
        target = self.ports.get((SOCK_DGRAM, address))
        if target is None:
            raise VfsError(Errno.ECONNREFUSED)
        if blocking and len(target.dgrams) >= DGRAM_QUEUE_MAX:
            raise WouldBlock(f"sock:{target.ident}:dgram", fallback=0)
        target.dgrams.append((sock.address or "", bytes(data)))
        self._inc("net.dgrams_sent")
        self._inc("net.bytes_sent", len(data))
        return len(data)

    def recv_dgram(self, sock: Socket, count: int, blocking: bool):
        """Pop one datagram: returns (source address, payload truncated
        to ``count``).  Datagram boundaries are preserved; excess bytes
        of a truncated datagram are discarded (POSIX SOCK_DGRAM)."""
        if not sock.dgrams:
            if blocking:
                raise WouldBlock(f"sock:{sock.ident}:recvfrom", fallback=0)
            return ("", b"")
        source, payload = sock.dgrams.popleft()
        self._inc("net.dgrams_received")
        return (source, payload[:count])

    # -- readiness (select/poll over sockets) --------------------------

    def recv_ready(self, sock: Socket) -> bool:
        if sock.listener is not None:
            return bool(sock.listener.pending) or not sock.listener.open
        if sock.conn is not None:
            return sock.conn.recv_ready(sock.side)
        if sock.type == SOCK_DGRAM and sock.address is not None:
            return bool(sock.dgrams)
        return True  # unconnected legacy sink: read returns EOF now

    def send_ready(self, sock: Socket) -> bool:
        if sock.listener is not None:
            return False
        if sock.conn is not None:
            return sock.conn.send_ready(sock.side)
        return True  # sink / datagram: a send never waits on a buffer
