"""Deterministic in-kernel loopback networking.

See :mod:`repro.kernel.net.socket` for the socket/connection model and
DESIGN.md "Networking" for the blocking/readiness semantics and the
determinism argument.
"""

from .socket import (
    AF_INET,
    AF_UNIX,
    SHUT_RD,
    SHUT_RDWR,
    SHUT_WR,
    SOCK_CAPACITY,
    SOCK_DGRAM,
    SOCK_STREAM,
    Connection,
    ConnectionReset,
    ListenQueue,
    NetStack,
    SendOnShutdown,
    Socket,
)

__all__ = [
    "AF_INET",
    "AF_UNIX",
    "SHUT_RD",
    "SHUT_RDWR",
    "SHUT_WR",
    "SOCK_CAPACITY",
    "SOCK_DGRAM",
    "SOCK_STREAM",
    "Connection",
    "ConnectionReset",
    "ListenQueue",
    "NetStack",
    "SendOnShutdown",
    "Socket",
]
