"""Capability tracking policies (§5.3).

A capability-tracking policy requires that an argument of a system call
be derived from the return value of an earlier call — the canonical
example being "the fd passed to ``read`` must have been returned by an
``open`` whose policy allows it".

The paper sketches two designs and adopts the second:

1. *naive*: remember only the last fd returned by each ``open`` site —
   broken because an open site can be executed repeatedly, several of
   its descriptors can be live at once, and fds are reused after close;
2. *set-based*: keep, per producing call site, the set of currently
   active descriptors, added on ``open`` and removed on ``close``,
   maintained in an efficient authenticated structure (the paper cites
   authenticated dictionaries).

:class:`CapabilityTable` implements the set-based design.  We keep the
table in kernel memory — trusted by construction — and additionally
provide :class:`AuthenticatedDictionary`, a MAC-chained set that shows
how the same state can live in *untrusted* application memory with only
a counter in the kernel, mirroring the lastBlock memory checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto import MacProvider


class CapabilityError(Exception):
    """A capability check failed (wrong or stale descriptor)."""


@dataclass
class CapabilityTable:
    """Kernel-side tracking: producing site -> set of live descriptors."""

    #: site block id -> active fds produced by that site
    by_site: dict[int, set[int]] = field(default_factory=dict)
    #: fd -> producing site (for close-time removal)
    owner: dict[int, int] = field(default_factory=dict)

    def grant(self, site_block: int, fd: int) -> None:
        """Record that ``site_block``'s open/socket returned ``fd``."""
        if fd in self.owner:
            # fd reuse after a close that we missed would be a kernel
            # bug; the table must never double-grant.
            raise CapabilityError(f"fd {fd} already live (site {self.owner[fd]})")
        self.by_site.setdefault(site_block, set()).add(fd)
        self.owner[fd] = site_block

    def revoke(self, fd: int) -> None:
        """Remove ``fd`` on close; unknown fds are ignored (the fd may
        predate tracking, e.g. stdin/stdout)."""
        site = self.owner.pop(fd, None)
        if site is not None:
            self.by_site[site].discard(fd)

    def check(self, fd: int, allowed_sites: frozenset[int]) -> bool:
        """Does ``fd`` descend from one of the allowed producing sites?"""
        site = self.owner.get(fd)
        return site is not None and site in allowed_sites

    def live_fds(self, site_block: int) -> frozenset[int]:
        return frozenset(self.by_site.get(site_block, ()))


@dataclass
class AuthenticatedDictionary:
    """A MAC-authenticated set living in untrusted memory.

    The *contents* (a sorted tuple of ints) model data stored in the
    application's address space; the kernel keeps only ``counter`` and
    recomputes/verifies the MAC on every operation, exactly like the
    lastBlock memory checker but for a set.  Replaying a stale snapshot
    fails because the counter participates in the MAC.
    """

    provider: MacProvider
    # -- untrusted half (application memory) --
    contents: tuple[int, ...] = ()
    mac: bytes = b""
    # -- trusted half (kernel memory) --
    counter: int = 0

    def __post_init__(self) -> None:
        if not self.mac:
            self.mac = self._tag(self.contents, self.counter)

    def _tag(self, contents: tuple[int, ...], counter: int) -> bytes:
        payload = counter.to_bytes(8, "little") + b"".join(
            v.to_bytes(4, "little") for v in contents
        )
        return self.provider.tag(payload)

    def _verify(self) -> None:
        if self.mac != self._tag(self.contents, self.counter):
            raise CapabilityError("authenticated dictionary corrupted or replayed")

    def add(self, value: int) -> None:
        self._verify()
        contents = tuple(sorted(set(self.contents) | {value}))
        self.counter += 1
        self.contents = contents
        self.mac = self._tag(contents, self.counter)

    def remove(self, value: int) -> None:
        self._verify()
        contents = tuple(sorted(set(self.contents) - {value}))
        self.counter += 1
        self.contents = contents
        self.mac = self._tag(contents, self.counter)

    def contains(self, value: int) -> bool:
        self._verify()
        return value in self.contents
