"""The authentication record: the ASYS trap ABI.

The installer appends one record per rewritten call site to the
read-only ``.authdata`` section and rewrites the call site to load the
record's address into ``r7`` before trapping.  §3.2's "five additional
arguments" map onto the record fields:

====== ======================= =========================================
offset field                   §3.2 argument
====== ======================= =========================================
0      polDes (u32)            policy descriptor
4      blockID (u32)           basic block of the current call
8      predSetPtr (u32)        predecessor-set authenticated string
12     lbPtr (u32)             pointer to lastBlock + lbMAC policy state
16     callMAC (16 bytes)      the call MAC
====== ======================= =========================================

Extension fields follow when the descriptor enables them (§5): one
pattern-AS pointer per pattern-constrained parameter (ascending index),
then ``fdMask``/``fdAllowedPtr`` for capability tracking.  Proof hints
for patterns are runtime values and travel in ``r8`` instead (a pointer
to ``[count, v0, v1, ...]`` words), since they change per call.

The record lives in attacker-readable, attacker-*writable*-adjacent
memory — its integrity comes entirely from the call MAC, which covers
every field through the encoded policy.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.crypto import MAC_SIZE
from repro.cpu.memory import Memory
from repro.policy.descriptor import PolicyDescriptor

CORE_SIZE = 16 + MAC_SIZE  # fixed fields + call MAC


@dataclass
class AuthRecord:
    descriptor: PolicyDescriptor
    block_id: int
    predset_ptr: int
    lastblock_ptr: int
    call_mac: bytes
    pattern_ptrs: tuple[int, ...] = ()
    fd_mask: int = 0
    fd_allowed_ptr: int = 0

    def pack(self) -> bytes:
        out = struct.pack(
            "<IIII",
            int(self.descriptor),
            self.block_id,
            self.predset_ptr,
            self.lastblock_ptr,
        )
        out += self.call_mac
        for ptr in self.pattern_ptrs:
            out += struct.pack("<I", ptr)
        if self.descriptor.capability_tracked:
            out += struct.pack("<II", self.fd_mask, self.fd_allowed_ptr)
        return out

    @property
    def size(self) -> int:
        size = CORE_SIZE + 4 * len(self.pattern_ptrs)
        if self.descriptor.capability_tracked:
            size += 8
        return size


def read_auth_record(memory: Memory, address: int) -> AuthRecord:
    """Parse the record at ``address`` in guest memory.

    Raises :class:`repro.cpu.memory.MemoryFault` on bad pointers; the
    caller (the trap handler) converts that into a fail-stop."""
    head = memory.read(address, CORE_SIZE, force=True)
    bits, block_id, predset_ptr, lastblock_ptr = struct.unpack_from("<IIII", head, 0)
    call_mac = head[16:CORE_SIZE]
    descriptor = PolicyDescriptor(bits)
    cursor = address + CORE_SIZE
    pattern_ptrs = []
    for _ in descriptor.pattern_params():
        pattern_ptrs.append(memory.read_u32(cursor, force=True))
        cursor += 4
    fd_mask = 0
    fd_allowed_ptr = 0
    if descriptor.capability_tracked:
        fd_mask = memory.read_u32(cursor, force=True)
        fd_allowed_ptr = memory.read_u32(cursor + 4, force=True)
    return AuthRecord(
        descriptor=descriptor,
        block_id=block_id,
        predset_ptr=predset_ptr,
        lastblock_ptr=lastblock_ptr,
        call_mac=call_mac,
        pattern_ptrs=tuple(pattern_ptrs),
        fd_mask=fd_mask,
        fd_allowed_ptr=fd_allowed_ptr,
    )


#: Size of the policy-state blob in ``.polstate``: lastBlock + lbMAC.
POLSTATE_SIZE = 4 + MAC_SIZE


def pack_policy_state(last_block: int, lb_mac: bytes) -> bytes:
    return struct.pack("<I", last_block) + lb_mac


def read_policy_state(memory: Memory, address: int) -> tuple[int, bytes]:
    blob = memory.read(address, POLSTATE_SIZE, force=True)
    (last_block,) = struct.unpack_from("<I", blob, 0)
    return last_block, blob[4:]


def state_mac_payload(last_block: int, counter: int) -> bytes:
    """What the memory-checker MAC covers: lastBlock plus the kernel's
    per-process counter (the replay nonce)."""
    return struct.pack("<IQ", last_block & 0xFFFFFFFF, counter & 0xFFFFFFFFFFFFFFFF)
