"""File-name normalization (§5.4).

A policy that permits ``open("/tmp/foo")`` is useless if an attacker
can plant a symlink ``/tmp/foo -> /etc/passwd``: the string the policy
checks and the file the kernel opens diverge.  The fix is the standard
one — compare *normalized* names (all symlinks resolved, ``.``/``..``
folded) during system call checking, inside the kernel, on the same
resolution the actual open will use.

:func:`check_normalized` is the kernel-side helper; it is used by the
extension-enabled trap path and by the Systrace baseline monitor.
"""

from __future__ import annotations

from repro.kernel.vfs import Vfs, VfsError


def normalize_path(vfs: Vfs, path: str, cwd: str = "/") -> str:
    """Best-effort canonicalization; unresolvable paths normalize to
    themselves (made absolute), so missing files still compare sanely."""
    try:
        return vfs.normalize(path, cwd)
    except VfsError:
        if path.startswith("/"):
            return path
        return cwd.rstrip("/") + "/" + path


def check_normalized(vfs: Vfs, observed: str, permitted: str, cwd: str = "/") -> bool:
    """Does ``observed`` refer to the object ``permitted`` names?

    ``permitted`` is the policy's name, normalized once at installation
    time against the pristine filesystem; it is compared literally.
    Only the runtime ``observed`` name is normalized — otherwise an
    attacker who plants a symlink *at the policy's own path* would
    drag both sides of the comparison along with it."""
    return normalize_path(vfs, observed, cwd) == permitted
