"""The 32-bit policy descriptor.

§3.2: "a 32-bit integer that encodes information about which properties
of the system call are constrained by its policy".  Our bit layout
(documented here rather than matching the paper's unpublished one):

========  =====================================================
bit 0     call site constrained
bits 1-6  parameter *i* value constrained (bit ``1+i``)
bits 8-13 parameter *i* is an authenticated string (bit ``8+i``)
bit 16    control-flow (predecessor set) constrained
bit 17    capability tracking applies to an fd parameter (§5.3)
bits 20-25 parameter *i* is pattern-constrained (§5.1, bit ``20+i``)
========  =====================================================

The descriptor participates in the call MAC, so an attacker cannot
weaken a policy by flipping bits in it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique

MAX_PARAMS = 6

_BIT_CALL_SITE = 1 << 0
_BIT_CONTROL_FLOW = 1 << 16
_BIT_CAPABILITY = 1 << 17


@unique
class ParamClass(Enum):
    """How the static analysis classified one argument (§4.1)."""

    STRING = "string"  # address of a known string constant
    IMMEDIATE = "immediate"  # some other known constant
    UNKNOWN = "unknown"  # not statically determined
    OUTPUT = "output"  # output-only argument (kernel writes here)
    MULTI_VALUE = "multi-value"  # small finite set of possible values (§5)
    FD = "fd"  # file descriptor from a previous call (§5.3)


def _param_bit(index: int) -> int:
    if not 0 <= index < MAX_PARAMS:
        raise ValueError(f"parameter index out of range: {index}")
    return 1 << (1 + index)


def _string_bit(index: int) -> int:
    if not 0 <= index < MAX_PARAMS:
        raise ValueError(f"parameter index out of range: {index}")
    return 1 << (8 + index)


def _pattern_bit(index: int) -> int:
    if not 0 <= index < MAX_PARAMS:
        raise ValueError(f"parameter index out of range: {index}")
    return 1 << (20 + index)


@dataclass(frozen=True)
class PolicyDescriptor:
    """Immutable wrapper around the descriptor bits."""

    bits: int = 0

    # -- builders -------------------------------------------------------

    def with_call_site(self) -> "PolicyDescriptor":
        return PolicyDescriptor(self.bits | _BIT_CALL_SITE)

    def with_control_flow(self) -> "PolicyDescriptor":
        return PolicyDescriptor(self.bits | _BIT_CONTROL_FLOW)

    def with_capability(self) -> "PolicyDescriptor":
        return PolicyDescriptor(self.bits | _BIT_CAPABILITY)

    def with_param(self, index: int, is_string: bool = False) -> "PolicyDescriptor":
        bits = self.bits | _param_bit(index)
        if is_string:
            bits |= _string_bit(index)
        return PolicyDescriptor(bits)

    def with_pattern_param(self, index: int) -> "PolicyDescriptor":
        return PolicyDescriptor(self.bits | _pattern_bit(index) | _string_bit(index))

    # -- queries ---------------------------------------------------------

    @property
    def call_site_constrained(self) -> bool:
        return bool(self.bits & _BIT_CALL_SITE)

    @property
    def control_flow_constrained(self) -> bool:
        return bool(self.bits & _BIT_CONTROL_FLOW)

    @property
    def capability_tracked(self) -> bool:
        return bool(self.bits & _BIT_CAPABILITY)

    def param_constrained(self, index: int) -> bool:
        return bool(self.bits & _param_bit(index))

    def param_is_string(self, index: int) -> bool:
        return bool(self.bits & _string_bit(index))

    def param_is_pattern(self, index: int) -> bool:
        return bool(self.bits & _pattern_bit(index))

    def constrained_params(self) -> list[int]:
        return [i for i in range(MAX_PARAMS) if self.param_constrained(i)]

    def pattern_params(self) -> list[int]:
        return [i for i in range(MAX_PARAMS) if self.param_is_pattern(i)]

    def __int__(self) -> int:
        return self.bits
