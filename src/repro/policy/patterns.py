"""Argument patterns with proof hints (§5.1).

Patterns are the paper's glob dialect: literal characters, ``*`` (any
character sequence), and ``{a,b,c}`` alternation.  Rather than teach
the kernel regular-expression matching, the *untrusted application*
matches the argument and hands the kernel a **proof hint**: for each
``{}`` the index of the branch taken, and for each ``*`` the exact
number of characters it consumed.  The kernel then verifies the match
with a single linear scan — program-checking in the Blum/Kannan sense.

The paper's worked example: pattern ``/tmp/{foo,bar}*baz``, argument
``/tmp/foofoobaz``, hint ``(0, 3)`` — branch 0 ("foo"), then ``*``
consumes exactly 3 characters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union


class PatternError(ValueError):
    """Malformed pattern text."""


@dataclass(frozen=True)
class _Literal:
    text: bytes


@dataclass(frozen=True)
class _Star:
    pass


@dataclass(frozen=True)
class _Choice:
    branches: tuple[bytes, ...]


_Element = Union[_Literal, _Star, _Choice]


@dataclass(frozen=True)
class Pattern:
    """A parsed pattern; ``source`` is kept for storage as an AS."""

    source: str
    elements: tuple[_Element, ...]

    @classmethod
    def parse(cls, source: str) -> "Pattern":
        elements: list[_Element] = []
        literal = bytearray()

        def flush() -> None:
            if literal:
                elements.append(_Literal(bytes(literal)))
                literal.clear()

        i = 0
        while i < len(source):
            ch = source[i]
            if ch == "*":
                flush()
                elements.append(_Star())
                i += 1
            elif ch == "{":
                end = source.find("}", i)
                if end < 0:
                    raise PatternError(f"unterminated {{ in pattern {source!r}")
                body = source[i + 1 : end]
                if not body:
                    raise PatternError(f"empty alternation in pattern {source!r}")
                flush()
                elements.append(
                    _Choice(tuple(b.encode("utf-8") for b in body.split(",")))
                )
                i = end + 1
            elif ch == "}":
                raise PatternError(f"stray }} in pattern {source!r}")
            else:
                literal.append(ord(ch))
                i += 1
        flush()
        return cls(source=source, elements=tuple(elements))

    @property
    def hint_slots(self) -> int:
        """Number of hint integers a proof for this pattern needs."""
        return sum(
            1 for e in self.elements if isinstance(e, (_Star, _Choice))
        )


def match_with_hint(
    pattern: Pattern, argument: bytes, hint: Sequence[int]
) -> bool:
    """The kernel-side verifier: O(len(argument) + len(pattern)).

    Scans pattern and argument left to right, consuming one hint value
    per ``*``/``{}`` element.  Returns False on any mismatch, a wrong
    hint, or leftover input."""
    cursor = 0
    hint_index = 0
    for element in pattern.elements:
        if isinstance(element, _Literal):
            end = cursor + len(element.text)
            if argument[cursor:end] != element.text:
                return False
            cursor = end
        elif isinstance(element, _Choice):
            if hint_index >= len(hint):
                return False
            branch = hint[hint_index]
            hint_index += 1
            if not 0 <= branch < len(element.branches):
                return False
            text = element.branches[branch]
            end = cursor + len(text)
            if argument[cursor:end] != text:
                return False
            cursor = end
        else:  # _Star
            if hint_index >= len(hint):
                return False
            skip = hint[hint_index]
            hint_index += 1
            if skip < 0 or cursor + skip > len(argument):
                return False
            cursor += skip
    return cursor == len(argument) and hint_index == len(hint)


def derive_hint(pattern: Pattern, argument: bytes) -> Optional[tuple[int, ...]]:
    """The application-side prover: backtracking search for a hint.

    This is the work the paper pushes *out* of the kernel; it may be
    super-linear, which is exactly why the kernel only verifies."""

    def search(element_index: int, cursor: int) -> Optional[tuple[int, ...]]:
        if element_index == len(pattern.elements):
            return () if cursor == len(argument) else None
        element = pattern.elements[element_index]
        if isinstance(element, _Literal):
            end = cursor + len(element.text)
            if argument[cursor:end] != element.text:
                return None
            return search(element_index + 1, end)
        if isinstance(element, _Choice):
            for branch, text in enumerate(element.branches):
                end = cursor + len(text)
                if argument[cursor:end] == text:
                    rest = search(element_index + 1, end)
                    if rest is not None:
                        return (branch,) + rest
            return None
        # _Star: try every consumable length (shortest first).
        for skip in range(len(argument) - cursor + 1):
            rest = search(element_index + 1, cursor + skip)
            if rest is not None:
                return (skip,) + rest
        return None

    return search(0, 0)
