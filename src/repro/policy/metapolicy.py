"""Metapolicies and policy templates (§5.2).

A metapolicy states what *must be* protected for each system call —
derived from the call's threat level — as opposed to what *can be*
protected automatically by static analysis.  When the installer cannot
satisfy a metapolicy rule from analysis alone, it emits a
:class:`PolicyTemplate` with named holes for the administrator to fill
(by hand, or from dynamic profiling).  The filled template becomes the
complete ASC policy used during rewriting.

Metapolicies also drive dynamic-library processing (§5.2): a library
function whose calls cannot satisfy the metapolicy is withdrawn from
the shared library and set aside for static linking; see
:mod:`repro.installer.dynlib`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum, unique
from typing import Optional, Union

from repro.policy.descriptor import ParamClass
from repro.policy.model import ParamPolicy, ProgramPolicy, SyscallPolicy


@unique
class Strictness(IntEnum):
    """How demanding a rule is; higher threat level, stricter rule."""

    NONE = 0  # nothing beyond the implicit syscall-number check
    CALL_SITE = 1  # call site must be constrained
    ARGS = 2  # call site + listed arguments must be constrained
    FULL = 3  # call site + all non-output arguments must be constrained


@dataclass(frozen=True)
class MetaRule:
    """Requirement for one system call name."""

    syscall: str
    strictness: Strictness = Strictness.CALL_SITE
    required_params: frozenset[int] = frozenset()


@dataclass
class MetaPolicy:
    """A machine's metapolicy: per-syscall rules plus a default."""

    rules: dict[str, MetaRule] = field(default_factory=dict)
    default: Strictness = Strictness.CALL_SITE

    @classmethod
    def high_threat_default(cls) -> "MetaPolicy":
        """A representative metapolicy: dangerous calls are fully
        constrained, file-creating calls must pin the path argument."""
        rules = {
            "execve": MetaRule("execve", Strictness.FULL),
            "open": MetaRule("open", Strictness.ARGS, frozenset({0})),
            "unlink": MetaRule("unlink", Strictness.ARGS, frozenset({0})),
            "chmod": MetaRule("chmod", Strictness.ARGS, frozenset({0})),
            "rename": MetaRule("rename", Strictness.ARGS, frozenset({0, 1})),
            "socket": MetaRule("socket", Strictness.CALL_SITE),
            "kill": MetaRule("kill", Strictness.CALL_SITE),
        }
        return cls(rules=rules)

    def rule_for(self, syscall: str) -> MetaRule:
        return self.rules.get(syscall, MetaRule(syscall, self.default))

    # -- evaluation ------------------------------------------------------

    def unmet_requirements(self, policy: SyscallPolicy) -> list[int]:
        """Parameter indices the metapolicy demands but the static
        analysis could not constrain (-1 represents the call site)."""
        rule = self.rule_for(policy.syscall)
        missing: list[int] = []
        if rule.strictness is Strictness.NONE:
            return missing
        # Call sites are always constrained by our installer, so the
        # CALL_SITE tier is always satisfiable; check anyway for safety.
        if not policy.descriptor().call_site_constrained:
            missing.append(-1)
        if rule.strictness is Strictness.ARGS:
            wanted = rule.required_params
        elif rule.strictness is Strictness.FULL:
            wanted = frozenset(range(policy.arg_count)) - policy.output_params
        else:
            wanted = frozenset()
        for index in sorted(wanted):
            if index not in policy.params:
                missing.append(index)
        return missing

    def evaluate(self, program_policy: ProgramPolicy) -> "PolicyTemplate":
        """Produce a template with holes for every unmet requirement."""
        template = PolicyTemplate(program=program_policy.program, metapolicy=self)
        for site, policy in sorted(program_policy.sites.items()):
            for index in self.unmet_requirements(policy):
                if index >= 0:
                    template.holes.append(TemplateHole(site, policy.syscall, index))
        template.base = program_policy
        return template


@dataclass(frozen=True)
class TemplateHole:
    """One unfilled requirement: this site's parameter needs a value."""

    call_site: int
    syscall: str
    param_index: int


@dataclass
class PolicyTemplate:
    """A partially complete policy awaiting administrator input."""

    program: str
    metapolicy: MetaPolicy
    holes: list[TemplateHole] = field(default_factory=list)
    base: Optional[ProgramPolicy] = None
    fills: dict[tuple[int, int], Union[int, bytes, str]] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return all(
            (hole.call_site, hole.param_index) in self.fills for hole in self.holes
        )

    def fill(
        self, call_site: int, param_index: int, value: Union[int, bytes, str]
    ) -> None:
        """Administrator supplies a constant (int/bytes) or a pattern (str)."""
        if not any(
            hole.call_site == call_site and hole.param_index == param_index
            for hole in self.holes
        ):
            raise KeyError(f"no hole at site {call_site:#x} param {param_index}")
        self.fills[(call_site, param_index)] = value

    def resolve(self) -> ProgramPolicy:
        """Apply the fills, producing the complete ASC policy."""
        if self.base is None:
            raise ValueError("template has no base policy")
        if not self.complete:
            unfilled = [
                hole for hole in self.holes
                if (hole.call_site, hole.param_index) not in self.fills
            ]
            raise ValueError(f"{len(unfilled)} template holes remain unfilled")
        for (site, index), value in self.fills.items():
            policy = self.base.sites[site]
            if isinstance(value, int):
                policy.params[index] = ParamPolicy(index, ParamClass.IMMEDIATE, value)
            else:
                # Dynamic string arguments are constrained as (possibly
                # literal) patterns — see repro.installer.core for why.
                text = value.decode("utf-8") if isinstance(value, bytes) else str(value)
                policy.params[index] = ParamPolicy(
                    index, ParamClass.STRING, text.encode(), pattern=text
                )
        return self.base
