"""Policy model for authenticated system calls.

A *system call policy* (§2.1) constrains one call site: syscall number,
call site address, constant argument values, and the set of system
calls that may immediately precede it.  A program's *overall policy* is
the collection of its per-site policies plus its system call graph.

This package is deliberately shared between the trusted installer and
the simulated kernel: both sides build the byte-level *encoded policy*
(§3.3) with the same function, so the kernel's reconstructed "encoded
call" matches the installer's encoded policy exactly when — and only
when — the runtime behaviour complies.
"""

from repro.policy.descriptor import PolicyDescriptor, ParamClass
from repro.policy.model import ParamPolicy, ProgramPolicy, SyscallPolicy
from repro.policy.encode import encode_policy, ParamEncoding
from repro.policy.authstrings import (
    AS_HEADER_SIZE,
    AuthenticatedString,
    CachedASReader,
    build_authenticated_string,
    read_authenticated_string,
)
from repro.policy.patterns import Pattern, PatternError, match_with_hint, derive_hint
from repro.policy.metapolicy import MetaPolicy, MetaRule, PolicyTemplate, Strictness
from repro.policy.capability import CapabilityTable, CapabilityError

__all__ = [
    "AS_HEADER_SIZE",
    "AuthenticatedString",
    "CachedASReader",
    "CapabilityError",
    "CapabilityTable",
    "MetaPolicy",
    "MetaRule",
    "ParamClass",
    "ParamEncoding",
    "ParamPolicy",
    "Pattern",
    "PatternError",
    "PolicyDescriptor",
    "PolicyTemplate",
    "ProgramPolicy",
    "Strictness",
    "SyscallPolicy",
    "build_authenticated_string",
    "derive_hint",
    "encode_policy",
    "match_with_hint",
    "read_authenticated_string",
]
