"""Authenticated strings (§3.2).

An AS is the tuple ``{length, MAC, string}`` stored in the read-only
``.authstr`` section: a 4-byte length, a 128-bit MAC over the string
contents, then the contents themselves.  The pointer actually passed to
the kernel (and seen by the ordinary syscall handler) is the address of
``string`` *inside* the AS, so the 20 bytes preceding it hold the
header.  That layout lets the kernel fetch ``length``/``MAC`` from a
fixed negative offset and bound its own work before touching the
string — defeating the "replace a short string with a very long one"
denial-of-service the paper warns about.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.crypto import MAC_SIZE, MacProvider
from repro.cpu.memory import Memory, MemoryFault

AS_HEADER_SIZE = 4 + MAC_SIZE  # length + MAC

#: Upper bound the kernel enforces on AS lengths: even with a forged
#: header it will never scan more than this many bytes.
MAX_AS_LENGTH = 1 << 16


@dataclass(frozen=True)
class AuthenticatedString:
    """A parsed AS: the header fields plus the claimed contents."""

    length: int
    mac: bytes
    content: bytes

    def verify(self, provider: MacProvider) -> bool:
        return len(self.content) == self.length and provider.verify(
            self.content, self.mac
        )


def build_authenticated_string(content: bytes, provider: MacProvider) -> bytes:
    """Serialize an AS record (header + content + NUL).

    The trailing NUL is not part of the authenticated length; it exists
    so the embedded pointer still works as a C string for the ordinary
    syscall path."""
    if len(content) > MAX_AS_LENGTH:
        raise ValueError(f"string too long for an AS: {len(content)} bytes")
    header = struct.pack("<I", len(content)) + provider.tag(content)
    return header + content + b"\x00"


def read_authenticated_string(
    memory: Memory, string_address: int
) -> AuthenticatedString:
    """Parse the AS whose *content* starts at ``string_address``.

    Raises :class:`MemoryFault` on unmapped headers and refuses
    absurd lengths so a corrupted header cannot stall the kernel."""
    header = memory.read(string_address - AS_HEADER_SIZE, AS_HEADER_SIZE, force=True)
    (length,) = struct.unpack_from("<I", header, 0)
    mac = header[4:]
    if length > MAX_AS_LENGTH:
        raise MemoryFault(string_address, f"AS length {length} exceeds cap")
    content = memory.read(string_address, length, force=True)
    return AuthenticatedString(length=length, mac=mac, content=content)


class CachedASReader:
    """Memoized AS parsing for immutable policy-section strings.

    Guest memory is hostile and mutable, so a parse result is only
    reused while the write-version of every region it was read from is
    unchanged (header and content can straddle a region boundary, hence
    up to two regions per entry).  Any store into those regions — a
    legitimate one or an attacker's corruption — makes the snapshot
    stale and forces a fresh parse, so the cache can never hide a
    mutation from the MAC checks that consume its output.
    """

    #: Entry cap; policy sections hold a bounded number of AS records,
    #: so this is a safety valve, not a working-set tuning knob.
    MAX_ENTRIES = 8192

    def __init__(self) -> None:
        self._entries: dict[int, tuple[tuple, AuthenticatedString]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def read(self, memory: Memory, string_address: int) -> AuthenticatedString:
        entry = self._entries.get(string_address)
        if entry is not None:
            snapshot, auth_string = entry
            if all(region.version == version for region, version in snapshot):
                return auth_string
        auth_string = read_authenticated_string(memory, string_address)
        header_region = memory.region_at(string_address - AS_HEADER_SIZE)
        content_region = memory.region_at(string_address)
        if header_region is content_region:
            snapshot = ((content_region, content_region.version),)
        else:
            snapshot = (
                (header_region, header_region.version),
                (content_region, content_region.version),
            )
        if len(self._entries) >= self.MAX_ENTRIES:
            self._entries.clear()
        self._entries[string_address] = (snapshot, auth_string)
        return auth_string
