"""Logical policy objects.

These are the human-readable form — what §3.1 renders as::

    Permit open from location 0x806c462
        Parameter 0 equals "/dev/console"
        Parameter 1 equals 5
        If preceded by the system call at 0x80a1c04

The installer derives them by static analysis; the byte-level encoding
that actually gets MAC'd lives in :mod:`repro.policy.encode`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.policy.descriptor import MAX_PARAMS, ParamClass, PolicyDescriptor


@dataclass(frozen=True)
class ParamPolicy:
    """Constraint on one parameter of one call site."""

    index: int
    kind: ParamClass
    #: Concrete value: int for IMMEDIATE, bytes for STRING, a glob
    #: pattern string for patterns, tuple of ints for MULTI_VALUE.
    value: Union[int, bytes, str, tuple, None] = None
    pattern: Optional[str] = None
    #: For address-valued immediates: the symbol whose final address is
    #: the constrained value (resolved by the installer's signer).
    symbol: Optional[object] = None

    def __post_init__(self) -> None:
        if not 0 <= self.index < MAX_PARAMS:
            raise ValueError(f"parameter index out of range: {self.index}")
        if self.kind is ParamClass.IMMEDIATE and not isinstance(self.value, int):
            raise ValueError("IMMEDIATE parameter requires an int value")
        if self.kind is ParamClass.STRING and not isinstance(self.value, bytes):
            raise ValueError("STRING parameter requires a bytes value")


@dataclass
class SyscallPolicy:
    """The policy of a single call site."""

    syscall: str
    number: int
    call_site: int  # absolute address of the trap instruction
    block_id: int  # basic block identifier (installer-assigned)
    params: dict[int, ParamPolicy] = field(default_factory=dict)
    predecessors: frozenset[int] = frozenset()  # block ids
    control_flow: bool = False
    #: Output-only parameter indices (reported in Table 3's o/p column;
    #: never constrained).
    output_params: frozenset[int] = frozenset()
    #: Indices whose values form a small finite set (Table 3 "mv").
    multi_value_params: frozenset[int] = frozenset()
    #: Indices that are file descriptors from earlier calls (Table 3 "fds").
    fd_params: frozenset[int] = frozenset()
    #: For capability tracking (§5.3): param index -> block ids of the
    #: call sites whose return value may flow into that parameter.
    fd_producers: dict = field(default_factory=dict)
    #: Total argument count of this syscall at this site.
    arg_count: int = 0

    def descriptor(self) -> PolicyDescriptor:
        """Derive the 32-bit descriptor from the logical policy."""
        descriptor = PolicyDescriptor().with_call_site()
        for index, param in sorted(self.params.items()):
            if param.pattern is not None:
                descriptor = descriptor.with_pattern_param(index)
            elif param.kind is ParamClass.STRING:
                descriptor = descriptor.with_param(index, is_string=True)
            elif param.kind is ParamClass.IMMEDIATE:
                descriptor = descriptor.with_param(index)
        if self.control_flow:
            descriptor = descriptor.with_control_flow()
        if self.fd_producers:
            descriptor = descriptor.with_capability()
        return descriptor

    def constrained_param_count(self) -> int:
        return len(self.params)

    def render(self) -> str:
        """The §3.1 textual form, for logs and documentation."""
        lines = [
            f"Permit {self.syscall} from location {self.call_site:#010x} "
            f"in basic block {self.block_id}"
        ]
        for index in range(self.arg_count):
            if index in self.params:
                param = self.params[index]
                if isinstance(param.value, bytes):
                    value = '"' + param.value.decode("utf-8", "replace") + '"'
                else:
                    value = str(param.value)
                lines.append(f"    Parameter {index} equals {value}")
            else:
                lines.append(f"    Parameter {index} equals ANY")
        if self.control_flow:
            rendered = ", ".join(str(b) for b in sorted(self.predecessors))
            lines.append(f"    Possible predecessors {rendered}")
        return "\n".join(lines)


@dataclass
class ProgramPolicy:
    """A whole program's overall policy."""

    program: str
    personality: str = "linux"
    #: call-site address -> policy
    sites: dict[int, SyscallPolicy] = field(default_factory=dict)
    #: block id -> set of predecessor block ids (the system call graph)
    syscall_graph: dict[int, frozenset[int]] = field(default_factory=dict)
    #: Installer-assigned program identifier (Frankenstein defense, §5.5).
    program_id: int = 0
    #: Trap sites whose syscall number could not be identified (PLTO's
    #: "cannot disassemble" report, §4.2); present only when policy
    #: generation runs in non-strict mode.
    unidentified_sites: list = field(default_factory=list)

    def add(self, policy: SyscallPolicy) -> None:
        if policy.call_site in self.sites:
            raise ValueError(f"duplicate policy for site {policy.call_site:#x}")
        self.sites[policy.call_site] = policy

    def distinct_syscalls(self) -> set[str]:
        """Table 1's metric: distinct system call names permitted."""
        return {policy.syscall for policy in self.sites.values()}

    def site_count(self) -> int:
        return len(self.sites)

    def total_args(self) -> int:
        return sum(policy.arg_count for policy in self.sites.values())

    def output_args(self) -> int:
        return sum(len(policy.output_params) for policy in self.sites.values())

    def authenticated_args(self) -> int:
        return sum(len(policy.params) for policy in self.sites.values())

    def multi_value_args(self) -> int:
        return sum(len(policy.multi_value_params) for policy in self.sites.values())

    def fd_args(self) -> int:
        return sum(len(policy.fd_params) for policy in self.sites.values())

    def predecessor_stats(self) -> dict:
        """Distribution of predecessor-set sizes across sites.

        Large predecessor sets are where the control-flow policy's
        authenticated strings grow; the stats feed capacity planning
        for the .authstr section and the per-call MAC block count."""
        sizes = sorted(
            len(site.predecessors)
            for site in self.sites.values()
            if site.control_flow
        )
        if not sizes:
            return {"sites": 0, "min": 0, "max": 0, "mean": 0.0, "total": 0}
        return {
            "sites": len(sizes),
            "min": sizes[0],
            "max": sizes[-1],
            "mean": sum(sizes) / len(sizes),
            "total": sum(sizes),
        }

    def coverage_row(self) -> dict[str, int]:
        """One row of Table 3."""
        return {
            "sites": self.site_count(),
            "calls": len(self.distinct_syscalls()),
            "args": self.total_args(),
            "o/p": self.output_args(),
            "auth": self.authenticated_args(),
            "mv": self.multi_value_args(),
            "fds": self.fd_args(),
        }
