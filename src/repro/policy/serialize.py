"""Policy serialization: human-auditable policy files.

The paper argues that coupling policies to binaries (instead of
loading them from policy files) removes an attack surface — §5.5:
"these systems can be compromised by modifying the policy files".
Policies here are therefore *exported* artifacts, not enforcement
inputs: the administrator dumps them for review, diffing, and audit
trails, and the canonical copy stays MAC-bound inside the binary.

The format is line-oriented and stable (sorted keys, no floats), so
two installs of the same binary produce byte-identical policy files —
which lets release pipelines diff policies across versions the way
Systrace users diff their policy files.
"""

from __future__ import annotations

import json

from repro.policy.descriptor import ParamClass
from repro.policy.model import ParamPolicy, ProgramPolicy, SyscallPolicy

FORMAT_VERSION = 1


def _param_to_json(param: ParamPolicy) -> dict:
    entry: dict = {"index": param.index, "kind": param.kind.value}
    if param.pattern is not None:
        entry["pattern"] = param.pattern
    elif isinstance(param.value, bytes):
        entry["value"] = param.value.decode("utf-8", "backslashreplace")
    elif param.symbol is not None:
        entry["symbol"] = str(param.symbol)
    else:
        entry["value"] = param.value
    return entry


def _param_from_json(entry: dict) -> ParamPolicy:
    kind = ParamClass(entry["kind"])
    pattern = entry.get("pattern")
    if pattern is not None:
        return ParamPolicy(entry["index"], kind, pattern.encode(), pattern=pattern)
    if "symbol" in entry:
        from repro.isa import SymbolRef

        text = entry["symbol"]
        name, sign, addend = text, "", "0"
        for separator in ("+", "-"):
            head, _, tail = text.rpartition(separator)
            if head and tail.isdigit():
                name, sign, addend = head, separator, tail
                break
        ref = SymbolRef(name, -int(addend) if sign == "-" else int(addend))
        return ParamPolicy(entry["index"], kind, 0, symbol=ref)
    value = entry.get("value")
    if kind is ParamClass.STRING and isinstance(value, str):
        value = value.encode("utf-8")
    return ParamPolicy(entry["index"], kind, value)


def policy_to_json(policy: ProgramPolicy) -> str:
    """Serialize a program policy to canonical JSON."""
    sites = []
    for call_site in sorted(policy.sites):
        site = policy.sites[call_site]
        sites.append({
            "syscall": site.syscall,
            "number": site.number,
            "call_site": site.call_site,
            "block_id": site.block_id,
            "arg_count": site.arg_count,
            "control_flow": site.control_flow,
            "predecessors": sorted(site.predecessors),
            "params": [
                _param_to_json(site.params[index])
                for index in sorted(site.params)
            ],
            "output_params": sorted(site.output_params),
            "multi_value_params": sorted(site.multi_value_params),
            "fd_params": sorted(site.fd_params),
            "fd_producers": {
                str(index): sorted(producers)
                for index, producers in sorted(site.fd_producers.items())
            },
        })
    document = {
        "format": FORMAT_VERSION,
        "program": policy.program,
        "personality": policy.personality,
        "program_id": policy.program_id,
        "unidentified_sites": list(policy.unidentified_sites),
        "sites": sites,
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def policy_from_json(text: str) -> ProgramPolicy:
    """Parse a policy file back into a ProgramPolicy."""
    document = json.loads(text)
    if document.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported policy format {document.get('format')!r}"
        )
    policy = ProgramPolicy(
        program=document["program"],
        personality=document.get("personality", "linux"),
        program_id=document.get("program_id", 0),
        unidentified_sites=list(document.get("unidentified_sites", [])),
    )
    for entry in document["sites"]:
        site = SyscallPolicy(
            syscall=entry["syscall"],
            number=entry["number"],
            call_site=entry["call_site"],
            block_id=entry["block_id"],
            arg_count=entry["arg_count"],
            control_flow=entry["control_flow"],
            predecessors=frozenset(entry["predecessors"]),
            output_params=frozenset(entry["output_params"]),
            multi_value_params=frozenset(entry["multi_value_params"]),
            fd_params=frozenset(entry["fd_params"]),
        )
        for param_entry in entry["params"]:
            param = _param_from_json(param_entry)
            site.params[param.index] = param
        for index, producers in entry.get("fd_producers", {}).items():
            site.fd_producers[int(index)] = frozenset(producers)
        policy.add(site)
        policy.syscall_graph[site.block_id] = site.predecessors
    return policy


def diff_policies(old: ProgramPolicy, new: ProgramPolicy) -> list:
    """Audit-level diff: which syscalls appeared/disappeared, which
    sites changed constraints.  Returns human-readable lines."""
    lines: list[str] = []
    old_calls = old.distinct_syscalls()
    new_calls = new.distinct_syscalls()
    for name in sorted(new_calls - old_calls):
        lines.append(f"+ syscall {name} now permitted")
    for name in sorted(old_calls - new_calls):
        lines.append(f"- syscall {name} no longer permitted")

    old_by_block = {site.block_id: site for site in old.sites.values()}
    new_by_block = {site.block_id: site for site in new.sites.values()}
    for block in sorted(set(old_by_block) & set(new_by_block)):
        before, after = old_by_block[block], new_by_block[block]
        if before.syscall != after.syscall:
            lines.append(
                f"~ block {block}: syscall {before.syscall} -> {after.syscall}"
            )
            continue
        removed = set(before.params) - set(after.params)
        added = set(after.params) - set(before.params)
        for index in sorted(removed):
            lines.append(
                f"~ block {block} ({before.syscall}): param {index} "
                f"no longer constrained"
            )
        for index in sorted(added):
            lines.append(
                f"~ block {block} ({before.syscall}): param {index} "
                f"newly constrained"
            )
        if before.predecessors != after.predecessors:
            lines.append(
                f"~ block {block} ({before.syscall}): predecessor set changed"
            )
    return lines
