"""The encoded policy / encoded call (§3.3-§3.4).

One function builds both: the installer calls it with values derived
from static analysis (producing the *encoded policy* whose MAC becomes
the call MAC), and the kernel calls it with values observed at trap
time (producing the *encoded call*).  The MACs match iff every
constrained property matches.

Layout, concatenated little-endian::

    u16  syscall number
    u32  policy descriptor
    u32  call site address          (when bit 0 set)
    u32  basic block id of the call
    for each constrained parameter, ascending index:
        u32 value                    (immediate)
      or
        u32 address, u32 length, 16B stringMAC   (authenticated string)
    u32  predecessor-set AS address  (when control flow set)
    u32  predecessor-set length
    16B  predecessor-set stringMAC
    u32  lastBlock address           (when control flow set)
    u32  fd-parameter bitmask        (when capability bit set, §5.3)
    u32  allowed-producer-set AS address
    u32  allowed-producer-set length
    16B  allowed-producer-set stringMAC
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Union

from repro.crypto import MAC_SIZE
from repro.policy.descriptor import MAX_PARAMS, PolicyDescriptor


@dataclass(frozen=True)
class ParamEncoding:
    """Runtime/installer encoding of one constrained parameter."""

    index: int
    #: int for an immediate; for an AS the (address, length, mac) triple.
    value: Union[int, tuple]

    @classmethod
    def immediate(cls, index: int, value: int) -> "ParamEncoding":
        return cls(index, value & 0xFFFFFFFF)

    @classmethod
    def auth_string(
        cls, index: int, address: int, length: int, mac: bytes
    ) -> "ParamEncoding":
        if len(mac) != MAC_SIZE:
            raise ValueError(f"string MAC must be {MAC_SIZE} bytes")
        return cls(index, (address & 0xFFFFFFFF, length & 0xFFFFFFFF, bytes(mac)))


class EncodeError(ValueError):
    """Raised when the inputs are inconsistent with the descriptor."""


def encode_policy(
    descriptor: PolicyDescriptor,
    syscall_number: int,
    call_site: int,
    block_id: int,
    params: list[ParamEncoding],
    predset: Optional[tuple] = None,  # (address, length, mac)
    lastblock_address: int = 0,
    capability: Optional[tuple] = None,  # (fd_mask, (address, length, mac))
) -> bytes:
    """Build the canonical byte string that the call MAC covers."""
    by_index = {p.index: p for p in params}
    if len(by_index) != len(params):
        raise EncodeError("duplicate parameter encodings")

    out = bytearray()
    out += struct.pack("<H", syscall_number & 0xFFFF)
    out += struct.pack("<I", int(descriptor))
    if descriptor.call_site_constrained:
        out += struct.pack("<I", call_site & 0xFFFFFFFF)
    out += struct.pack("<I", block_id & 0xFFFFFFFF)

    for index in range(MAX_PARAMS):
        if not descriptor.param_constrained(index) and not descriptor.param_is_pattern(index):
            if index in by_index:
                raise EncodeError(f"parameter {index} encoded but not constrained")
            continue
        if index not in by_index:
            raise EncodeError(f"constrained parameter {index} missing an encoding")
        entry = by_index[index]
        if descriptor.param_is_string(index):
            if not isinstance(entry.value, tuple):
                raise EncodeError(f"parameter {index} must be an AS triple")
            address, length, mac = entry.value
            out += struct.pack("<II", address, length)
            out += mac
        else:
            if not isinstance(entry.value, int):
                raise EncodeError(f"parameter {index} must be an immediate")
            out += struct.pack("<I", entry.value)

    if descriptor.control_flow_constrained:
        if predset is None:
            raise EncodeError("control flow constrained but no predecessor set")
        address, length, mac = predset
        out += struct.pack("<II", address & 0xFFFFFFFF, length & 0xFFFFFFFF)
        out += mac
        out += struct.pack("<I", lastblock_address & 0xFFFFFFFF)
    elif predset is not None:
        raise EncodeError("predecessor set supplied without control flow bit")

    if descriptor.capability_tracked:
        if capability is None:
            raise EncodeError("capability bit set but no capability spec")
        fd_mask, (address, length, mac) = capability
        out += struct.pack("<III", fd_mask & 0xFFFFFFFF, address & 0xFFFFFFFF, length & 0xFFFFFFFF)
        out += mac
    elif capability is not None:
        raise EncodeError("capability spec supplied without capability bit")

    return bytes(out)


def pack_predecessor_set(block_ids: frozenset[int]) -> bytes:
    """Serialize a predecessor set as the AS content: sorted u32 ids."""
    return b"".join(struct.pack("<I", b) for b in sorted(block_ids))


@lru_cache(maxsize=4096)
def unpack_predecessor_set(content: bytes) -> frozenset[int]:
    """Decode the sorted-u32 AS content back into a block-id set.

    Memoized: the kernel decodes the same immutable predecessor-set
    content on every trap at a control-flow-constrained site, and both
    the key (``bytes``) and the value (``frozenset``) are immutable, so
    caching is observationally pure.
    """
    if len(content) % 4:
        raise EncodeError(f"predecessor set length {len(content)} not a multiple of 4")
    return frozenset(
        struct.unpack_from("<I", content, i)[0] for i in range(0, len(content), 4)
    )
