"""The fault battery's target workloads.

Three fixed workloads, chosen so the battery exercises every class of
authenticated material:

- ``loop`` — a small iterative program whose four call sites (write,
  open, close, exit) each trap repeatedly.  Repetition is the point:
  it warms the verified-site cache and the verifier JIT's thunks, so
  post-warm-up faults stress the staleness guards over pre-verified
  spans rather than the first-verification path.
- ``victim`` — the attack battery's §4.1 victim run with *benign*
  stdin: string-argument-rich (open path, execve path), includes an
  execve into an unauthenticated marker program.
- ``loop-sched`` — three independent ``loop`` instances under the
  preemptive scheduler.  Independence is deliberate: with no IPC, every
  per-process result is interleaving-invariant by construction, so any
  divergence under timeslice jitter or run-queue rotation is a real
  determinism bug.
- ``netserver`` — the loopback-socket echo server with forked clients
  (see :mod:`repro.workloads.netserver`), scaled down for sweep speed.
  Its send/recv sites pass buffer pointers as Immediate constraints,
  which is what the ``sock-reg-tamper`` kind corrupts at trap entry.

Workloads are installed once per sweep with the sweep key and replayed
on every engine configuration.
"""

from __future__ import annotations

from repro.asm import assemble
from repro.attacks.scenarios import _LS_MARKER, _marker_program
from repro.attacks.victim import build_victim
from repro.binfmt import SefBinary, link
from repro.crypto import Key
from repro.installer import InstalledProgram, InstallerOptions, install
from repro.kernel import EnforcementMode, Kernel
from repro.workloads.netserver import build_netserver
from repro.workloads.runtime import runtime_source

#: The iterative workload's trip count.  Six trips × three traps per
#: trip + the final exit ≈ nineteen authenticated traps — enough that
#: every site re-traps well past the warm-up threshold while keeping a
#: thousand-run sweep fast.
LOOP_TRIPS = 6

#: Benign stdin for the victim (names an existing file, no overflow).
VICTIM_STDIN = b"/etc/motd\x00"

#: How many ``loop`` instances the scheduled workload runs.
SCHED_INSTANCES = 3

#: Netserver shape for the sweep: two clients × three requests gives
#: ~28 authenticated send/recv traps — enough spread for seeded trap
#: indices while keeping hundreds of scheduled runs fast.
NETSERVER_CLIENTS = 2
NETSERVER_REQUESTS = 3
NETSERVER_SPIN = 40

#: Sections whose spans the record-flip / prewarm-flip kinds target.
FLIP_SECTIONS = (".authdata", ".authstr")


def loop_source() -> str:
    """The ``loop`` workload (see module docstring)."""
    return f"""
.section .text
.global _start
_start:
    li r11, {LOOP_TRIPS}
loop:
    li r1, 1
    li r2, msg
    li r3, 5
    call sys_write
    li r1, path
    li r2, 0
    call sys_open
    mov r12, r0          ; the fd survives the close call in r12
    mov r1, r12
    call sys_close
    subi r11, r11, 1
    cmpi r11, 0
    bgt loop
    li r1, 0
    call sys_exit

.section .rodata
msg:
    .ascii "tick\\n"
path:
    .asciz "/etc/motd"
""" + runtime_source("linux", ("write", "open", "close", "exit"))


def build_loop() -> SefBinary:
    return assemble(loop_source(), metadata={"program": "fault-loop"})


def build_workloads(key: Key) -> dict[str, InstalledProgram]:
    """Install the battery's programs with the sweep key.

    ``loop-sched`` reuses the ``loop`` image — the scheduled workload
    differs only in how it is run, not in what is installed."""
    return {
        "loop": install(build_loop(), key, InstallerOptions()),
        "victim": install(build_victim(), key, InstallerOptions()),
        "netserver": install(
            build_netserver(
                clients=NETSERVER_CLIENTS,
                requests=NETSERVER_REQUESTS,
                spin=NETSERVER_SPIN,
            ),
            key,
            InstallerOptions(),
        ),
    }


def section_sizes(workloads: dict) -> dict:
    """(workload, section) -> byte length of the section's real data
    (not the page-rounded mapping), bounding span-flip offsets so every
    seeded flip lands on installer-emitted bytes."""
    sizes: dict = {}
    for name, installed in sorted(workloads.items()):
        image = link(installed.binary)
        for section in FLIP_SECTIONS:
            sizes[(name, section)] = image.segment(section).size
    return sizes


def make_kernel(key: Key, config, recorder=None) -> Kernel:
    """A fresh machine for one run: the config's engine knobs plus the
    filesystem the workloads expect (the open target and the victim's
    execve target)."""
    kernel = Kernel(
        key=key,
        mode=EnforcementMode.PERMISSIVE,
        recorder=recorder,
        **config.kernel_kwargs(),
    )
    kernel.vfs.write_file("/etc/motd", b"hello\n")
    kernel.vfs.write_file("/bin/ls", _marker_program(_LS_MARKER))
    return kernel
