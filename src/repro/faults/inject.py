"""Fault injectors: turn a :class:`~repro.faults.plan.FaultPlan` into
one concrete state corruption at trap time.

Injection happens *inside the trap boundary but before the kernel's
checks* — the :class:`TrapSpy` wraps the kernel's trap handler and
fires the armed injector right before the plan's Nth authenticated
trap is serviced, which is the strongest position for the checks to
defend: the corruption is in place for that very trap's verification.

All memory corruption goes through :meth:`Memory.flip_bit` /
:meth:`Memory.write` with ``force=True`` (the model for faults that
bypass guest protections — read-only policy sections included), which
still bumps region write-versions and fires watchers, so the caches'
staleness guards see every injected flip exactly as they would a
store.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cpu.vm import VM
from repro.crypto import MAC_SIZE
from repro.kernel.syscalls import SYSCALL_NUMBERS
from repro.faults.plan import FaultPlan
from repro.policy.authstrings import AS_HEADER_SIZE
from repro.policy.record import CORE_SIZE, read_auth_record

#: Offset of the call MAC within an authentication record.
_MAC_OFFSET = CORE_SIZE - MAC_SIZE


class TrapSpy:
    """Counts authenticated traps, firing the armed injector right
    before the Nth one is serviced.  With no injector it is a pure
    trap counter (the reference runs use it that way, so the traced
    path is byte-for-byte the same in clean and faulted runs).

    ``numbers`` restricts counting (and firing) to traps whose syscall
    number is in the set — the socket kinds use it to index into the
    netserver's send/recv traps only.

    The spy forwards to the kernel's trap handler *as captured at
    construction*, so it can either be installed on one VM
    (``vm.trap_handler = spy``) or shadow the kernel's bound method
    (``kernel.handle_trap = spy.handle_trap``); the latter covers every
    VM in a multiprogrammed run, forked children included."""

    def __init__(
        self,
        kernel,
        trap_index: int = -1,
        injector: Optional[Callable[[VM], None]] = None,
        numbers: Optional[frozenset] = None,
    ):
        self.kernel = kernel
        self.trap_index = trap_index
        self.injector = injector
        self.numbers = numbers
        self.seen = 0
        self.fired = False
        self._forward = kernel.handle_trap

    def handle_trap(self, vm: VM, authenticated: bool) -> int:
        if authenticated and (
            self.numbers is None or vm.regs[0] in self.numbers
        ):
            if (
                self.injector is not None
                and not self.fired
                and self.seen == self.trap_index
            ):
                self.fired = True
                self.injector(vm)
            self.seen += 1
        return self._forward(vm, authenticated)


def make_injector(plan: FaultPlan, image) -> Callable[[VM], None]:
    """Bind a plan to its trap-time injector.

    ``image`` is the workload's linked image — used to resolve section
    bases and record symbols; all live state (registers, the record
    ``r7`` points at) is read from the VM at fire time."""
    builder = _BUILDERS[plan.kind]
    return builder(plan, image)


# -- span flips -------------------------------------------------------------


def _build_section_flip(plan: FaultPlan, image) -> Callable[[VM], None]:
    """record-flip / prewarm-flip: one bit at a seeded offset within a
    policy section (.authdata or .authstr).  May land on dead state —
    a record whose site never traps again — in which case the run must
    stay bit-identical."""
    address = image.segment(plan.section).vaddr + plan.offset

    def inject(vm: VM) -> None:
        vm.memory.flip_bit(address, plan.bit, force=True)

    return inject


def _build_mac_flip(plan: FaultPlan, image) -> Callable[[VM], None]:
    """One bit in the live trap's own call MAC (the record ``r7`` is
    carrying into this very trap)."""

    def inject(vm: VM) -> None:
        address = vm.regs[7] + _MAC_OFFSET + plan.offset % MAC_SIZE
        vm.memory.flip_bit(address, plan.bit, force=True)

    return inject


def _build_as_flip(plan: FaultPlan, image) -> Callable[[VM], None]:
    """One bit in an authenticated string the live trap depends on:
    the predecessor-set AS or a string-constrained argument's AS
    (header length, MAC, or content — all fair game).  Sites with no
    AS at all degrade to a call-MAC flip so the plan still lands on
    live material."""

    def inject(vm: VM) -> None:
        record = read_auth_record(vm.memory, vm.regs[7])
        descriptor = record.descriptor
        targets = []
        if descriptor.control_flow_constrained and record.predset_ptr:
            targets.append(record.predset_ptr)
        for index in descriptor.constrained_params():
            if descriptor.param_is_string(index):
                targets.append(vm.regs[1 + index])
        if not targets:
            _build_mac_flip(plan, image)(vm)
            return
        content = targets[plan.offset % len(targets)]
        length = vm.memory.read_u32(content - AS_HEADER_SIZE, force=True)
        span = AS_HEADER_SIZE + length
        address = content - AS_HEADER_SIZE + (plan.offset >> 4) % span
        vm.memory.flip_bit(address, plan.bit, force=True)

    return inject


def _build_mac_transplant(plan: FaultPlan, image) -> Callable[[VM], None]:
    """Replace the live record's call MAC with another site's — valid
    MAC material, wrong binding.  The encoded call ties the MAC to the
    call site, so genuine-but-transplanted MACs must still die as a
    call-MAC mismatch (the §5.5 concern, in single-event form)."""
    donors = sorted(image.address_of(symbol) for symbol in _record_symbols(image))

    def inject(vm: VM) -> None:
        live = vm.regs[7]
        candidates = [d for d in donors if d != live] or donors
        donor = candidates[plan.offset % len(candidates)]
        mac = vm.memory.read(donor + _MAC_OFFSET, MAC_SIZE, force=True)
        vm.memory.write(live + _MAC_OFFSET, mac, force=True)

    return inject


def _record_symbols(image) -> list[str]:
    authdata = image.segment(".authdata")
    end = authdata.vaddr + authdata.size
    return [
        name
        for name, address in image.symbol_addresses.items()
        if authdata.vaddr <= address < end
    ]


# -- register tampering -----------------------------------------------------


def _build_reg_tamper(plan: FaultPlan, image) -> Callable[[VM], None]:
    """One bit in a trap-argument register the policy constrains: the
    syscall number (r0), the record pointer (r7), or a constrained
    parameter.  Models trap-time tampering with the 'five additional
    arguments' themselves rather than the memory they point at."""

    def inject(vm: VM) -> None:
        record = read_auth_record(vm.memory, vm.regs[7])
        targets = [0, 7] + [
            1 + index for index in record.descriptor.constrained_params()
        ]
        register = targets[plan.offset % len(targets)]
        vm.regs[register] = (vm.regs[register] ^ (1 << (plan.bit % 32))) & 0xFFFFFFFF

    return inject


def _build_sock_reg_tamper(plan: FaultPlan, image) -> Callable[[VM], None]:
    """One bit in a constrained data-transfer register of an
    authenticated ``send``/``recv`` at trap entry: the buffer pointer
    (r2) for ``send``, the length (r3) for ``recv`` — a recv buffer is
    an *output* parameter, unconstrained by design, so its pointer is
    not policy material.  The netserver passes both as ``li`` constants
    (Immediate constraints in the signed record), so the flip must die
    as a call-MAC mismatch in whichever process (server or client)
    trapped."""
    send_number = SYSCALL_NUMBERS["send"]

    def inject(vm: VM) -> None:
        register = 2 if vm.regs[0] == send_number else 3
        vm.regs[register] = (
            vm.regs[register] ^ (1 << (plan.bit % 32))
        ) & 0xFFFFFFFF

    return inject


# -- policy-state desync ----------------------------------------------------


def _build_counter_desync(plan: FaultPlan, image) -> Callable[[VM], None]:
    """Advance the kernel-side replay counter without the matching
    policy-state re-MAC — the stored lbMAC is now a stale epoch and
    the live trap's control-flow check must reject it."""

    def inject(vm: VM) -> None:
        kernel = _kernel_for(vm)
        process = kernel._vm_process[id(vm)]
        process.auth_counter += plan.delta

    return inject


def _build_lastblock_flip(plan: FaultPlan, image) -> Callable[[VM], None]:
    """One bit in the writable .polstate cell (lastBlock or its MAC)."""
    base = image.segment(".polstate").vaddr

    def inject(vm: VM) -> None:
        address = base + plan.offset % image.segment(".polstate").size
        vm.memory.flip_bit(address, plan.bit, force=True)

    return inject


def _kernel_for(vm: VM):
    """The spy wraps the kernel as ``vm.trap_handler``; unwrap it."""
    handler = vm.trap_handler
    return handler.kernel if isinstance(handler, TrapSpy) else handler


_BUILDERS = {
    "record-flip": _build_section_flip,
    "prewarm-flip": _build_section_flip,
    "mac-flip": _build_mac_flip,
    "as-flip": _build_as_flip,
    "mac-transplant": _build_mac_transplant,
    "reg-tamper": _build_reg_tamper,
    "sock-reg-tamper": _build_sock_reg_tamper,
    "counter-desync": _build_counter_desync,
    "lastblock-flip": _build_lastblock_flip,
}
