"""Deterministic fault injection (the detection-coverage battery).

The attack battery asks "does the kernel stop a crafted exploit?";
this package asks the complementary dependability question: "does the
kernel detect *arbitrary seeded corruption* of its authentication
material, on every engine configuration, without ever diverging
silently?"  See DESIGN.md "Fault injection" for the fault model and
outcome taxonomy, and ``python -m repro.tools faults`` for the CLI.
"""

from repro.faults.harness import RunOutcome, classify, run_workload
from repro.faults.plan import (
    ALLOWED_FAMILIES,
    CONFIG_NAMES,
    CONFIGS,
    EXPECTATIONS,
    EngineConfig,
    FaultPlan,
    KINDS,
    configs_named,
    generate_plans,
)
from repro.faults.sweep import SweepReport, run_sweep
from repro.faults.targets import build_workloads, make_kernel

__all__ = [
    "ALLOWED_FAMILIES",
    "CONFIG_NAMES",
    "CONFIGS",
    "EXPECTATIONS",
    "EngineConfig",
    "FaultPlan",
    "KINDS",
    "RunOutcome",
    "SweepReport",
    "build_workloads",
    "classify",
    "configs_named",
    "generate_plans",
    "make_kernel",
    "run_sweep",
    "run_workload",
]
