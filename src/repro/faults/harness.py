"""Run one fault plan on one engine configuration and classify it.

Classification compares the faulted run against the clean *reference*
run of the same workload on the same config:

- **detected** — the kernel fail-stopped the process AND the kill
  reason's check family is one the fault kind legitimately trips
  (:data:`~repro.faults.plan.ALLOWED_FAMILIES`).  A kill with a
  misattributed reason is NOT a detection: it means the checks fired
  for the wrong cause, which is a coverage bug worth failing on.
- **benign** — the run is bit-identical to the reference (status,
  kill state, both output streams, cycles, instructions).  Only legal
  for faults that may land on dead state and for scheduler
  perturbations (where it is *required*).
- **missed** — everything else: a run that diverged without being
  killed, a must-detect fault that was silently swallowed, a
  misattributed kill, or a scheduler perturbation that changed any
  per-process result.  Any miss is a hard failure of the sweep.

Reference signatures double as an engine-equivalence check: the sweep
asserts the clean signature of every workload is identical across all
configs before injecting anything.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.binfmt import link
from repro.cpu.vm import ExecutionFault
from repro.crypto import Key
from repro.faults.inject import TrapSpy, make_injector
from repro.faults.plan import ALLOWED_FAMILIES, SCHED_KINDS, FaultPlan
from repro.faults.targets import SCHED_INSTANCES, VICTIM_STDIN, make_kernel
from repro.kernel.auth import violation_family
from repro.kernel.sched.scheduler import Scheduler
from repro.kernel.syscalls import SYSCALL_NUMBERS

#: Timeslice of the clean scheduled reference run.  Perturbed runs use
#: the plan's seeded slice; both must produce identical per-task
#: results.
REFERENCE_TIMESLICE = 200


@dataclass(frozen=True)
class RunOutcome:
    """What one run produced, reduced to its comparable signature."""

    signature: tuple
    killed: bool
    kill_reason: str
    traps: int = 0


def run_workload(
    key: Key,
    config,
    workloads: dict,
    workload: str,
    plan: FaultPlan = None,
    recorder=None,
) -> RunOutcome:
    """Execute ``workload`` on a fresh kernel; with a plan, arm its
    injector.  ``plan=None`` is the clean reference run."""
    if workload == "loop-sched":
        return _run_scheduled(key, config, workloads, plan, recorder)
    if workload == "netserver":
        return _run_netserver(key, config, workloads, plan, recorder)
    return _run_single(key, config, workloads, workload, plan, recorder)


def _run_single(
    key: Key, config, workloads, workload, plan, recorder
) -> RunOutcome:
    installed = workloads[workload]
    kernel = make_kernel(key, config, recorder=recorder)
    stdin = VICTIM_STDIN if workload == "victim" else b""
    process, vm = kernel.load(installed.binary, stdin=stdin)
    injector = None
    if plan is not None:
        injector = make_injector(plan, _image_of(installed))
    spy = TrapSpy(
        kernel,
        trap_index=plan.trap_index if plan is not None else -1,
        injector=injector,
    )
    vm.trap_handler = spy
    crash = ""
    try:
        status = vm.run()
    except ExecutionFault as fault:
        # The injected fault drove the *guest* into a machine fault
        # (e.g. a corrupted value steered a later load).  That is a
        # divergence the checks did not convert into an authenticated
        # kill — record it so classification can flag the miss instead
        # of aborting the whole sweep.
        status = -1
        crash = f"guest crash: {fault}"
    finally:
        kernel.release_process(process, vm)
    signature = process_signature(
        status, crash, vm.killed, vm.kill_reason,
        bytes(process.stdout), bytes(process.stderr),
        vm.cycles, vm.instructions_executed,
    )
    return RunOutcome(
        signature=signature,
        killed=vm.killed,
        kill_reason=vm.kill_reason,
        traps=spy.seen,
    )


def process_signature(
    status, crash, killed, kill_reason, stdout, stderr, cycles, instructions
) -> tuple:
    """One process's comparable result.  A fixed 8-slot layout shared
    by the single-run and per-task scheduled signatures here and by the
    conformance oracle (:mod:`repro.conformance.oracle`);
    ``_CYCLES_SLOT`` is the entry :func:`portable_signature` strips."""
    return (status, crash, killed, kill_reason, stdout, stderr, cycles,
            instructions)


_CYCLES_SLOT = 6


#: id(InstalledProgram) -> LoadedImage.  Injectors only need symbol and
#: section addresses, which are identical for every link of the same
#: binary — link once per workload object, not once per run.  (The
#: kernel still links its own image per process.)
_IMAGES: dict = {}


def _image_of(installed):
    image = _IMAGES.get(id(installed))
    if image is None:
        image = _IMAGES[id(installed)] = link(installed.binary)
    return image


def _run_scheduled(key, config, workloads, plan, recorder) -> RunOutcome:
    """The multiprogrammed workload: independent loop instances whose
    per-task results must be invariant under any preemption order."""
    installed = workloads["loop"]
    kernel = make_kernel(key, config, recorder=recorder)
    timeslice = plan.timeslice if plan is not None else REFERENCE_TIMESLICE
    scheduler = Scheduler(kernel, timeslice=timeslice)
    tasks = [
        scheduler.adopt(*kernel.load(installed.binary))
        for _ in range(SCHED_INSTANCES)
    ]
    if plan is not None and plan.rotate_every:
        switches = [0]

        def perturb(sched, task):
            switches[0] += 1
            if switches[0] % plan.rotate_every == 0:
                sched.perturb_runq(1)

        scheduler.on_switch = perturb
    scheduler.run()
    per_task = tuple(
        process_signature(
            task.exit_status, "", task.killed, task.kill_reason,
            bytes(task.process.stdout), bytes(task.process.stderr),
            task.vm.cycles, task.vm.instructions_executed,
        )
        for task in tasks
    )
    killed = any(task.killed for task in tasks)
    reasons = "; ".join(task.kill_reason for task in tasks if task.killed)
    return RunOutcome(signature=per_task, killed=killed, kill_reason=reasons)


#: The socket data-transfer calls the netserver spy counts: plans for
#: the sock kinds index into *these* traps only, so every seeded index
#: lands on a send/recv with an Immediate-constrained buffer pointer.
_SOCK_DATA_CALLS = frozenset(
    (SYSCALL_NUMBERS["send"], SYSCALL_NUMBERS["recv"])
)


def _run_netserver(key, config, workloads, plan, recorder) -> RunOutcome:
    """The networking workload: the echo server and its forked clients
    under the scheduler, with the spy shadowing the kernel's trap
    handler so it sees every process's traps (``vm.trap_handler`` only
    covers the first VM; forked children get fresh ones)."""
    installed = workloads["netserver"]
    kernel = make_kernel(key, config, recorder=recorder)
    injector = None
    if plan is not None:
        injector = make_injector(plan, _image_of(installed))
    spy = TrapSpy(
        kernel,
        trap_index=plan.trap_index if plan is not None else -1,
        injector=injector,
        numbers=_SOCK_DATA_CALLS,
    )
    kernel.handle_trap = spy.handle_trap  # shadow: covers forked clients
    scheduler = Scheduler(kernel, timeslice=REFERENCE_TIMESLICE)
    scheduler.adopt(*kernel.load(installed.binary))
    scheduler.run()
    tasks = [scheduler.tasks[pid] for pid in sorted(scheduler.tasks)]
    per_task = tuple(
        process_signature(
            task.exit_status, "", task.killed, task.kill_reason,
            bytes(task.process.stdout), bytes(task.process.stderr),
            task.vm.cycles, task.vm.instructions_executed,
        )
        for task in tasks
    )
    killed = any(task.killed for task in tasks)
    reasons = "; ".join(task.kill_reason for task in tasks if task.killed)
    return RunOutcome(
        signature=per_task, killed=killed, kill_reason=reasons, traps=spy.seen
    )


def portable_signature(outcome: RunOutcome) -> tuple:
    """The signature with cycle counts dropped.

    Cycles are *config*-dependent by design — disabling the fast path
    restores the full per-trap CMAC cost the paper measured — so the
    cross-config engine-equivalence assertion compares everything
    except them.  Within one config, cycles stay in the signature:
    benign means bit-identical including cost."""
    def strip(entry):
        return entry[:_CYCLES_SLOT] + entry[_CYCLES_SLOT + 1:]

    signature = outcome.signature
    if signature and isinstance(signature[0], tuple):  # scheduled: per-task
        return tuple(strip(entry) for entry in signature)
    return strip(signature)


def classify(plan: FaultPlan, reference: RunOutcome, outcome: RunOutcome) -> str:
    """Map one faulted run to detected / benign / missed (see module
    docstring)."""
    identical = outcome.signature == reference.signature
    if plan.expected == "benign":
        return "benign" if identical and not outcome.killed else "missed"
    if outcome.killed:
        family = violation_family(outcome.kill_reason)
        if family in ALLOWED_FAMILIES[plan.kind]:
            return "detected"
        return "missed"  # misattributed kill
    if plan.expected == "any" and identical:
        return "benign"
    return "missed"


def is_sched_plan(plan: FaultPlan) -> bool:
    return plan.kind in SCHED_KINDS
