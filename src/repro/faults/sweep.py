"""The detection-coverage sweep: hundreds of seeded faults × every
engine configuration, with a machine-readable report.

The contract the CI battery enforces:

1. **Zero misses.**  Every injected fault is either detected with a
   correctly attributed kill reason or provably benign (bit-identical
   run).  One MISSED outcome fails the sweep.
2. **Config independence.**  The same plans run on all five engine
   configurations; detection coverage must not depend on which
   execution engine or which verification cache is in play.
3. **Determinism.**  Same seed + same key -> byte-identical report
   JSON.  The clean reference signatures are also asserted identical
   across configs before any fault runs, so the sweep doubles as an
   engine-equivalence gate.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.crypto import Key
from repro.faults.harness import classify, portable_signature, run_workload
from repro.faults.plan import (
    FaultPlan,
    configs_named,
    generate_plans,
)
from repro.faults.targets import build_workloads, section_sizes

OUTCOMES = ("detected", "benign", "missed")

#: Workloads whose clean runs seed the sweep (trap counts + the
#: engine-equivalence assertion).
_WORKLOADS = ("loop", "victim", "loop-sched", "netserver")

#: Workloads whose clean trap count bounds seeded trap indices.  For
#: netserver the count is send/recv traps only (the spy filters).
_TRAP_WORKLOADS = ("loop", "victim", "netserver")


@dataclass
class SweepReport:
    """Everything one sweep produced, JSON-serializable and stable."""

    seed: int
    count: int
    configs: tuple
    kinds: tuple
    traps_by_workload: dict
    runs: list = field(default_factory=list)
    totals: dict = field(default_factory=dict)
    by_kind: dict = field(default_factory=dict)
    by_config: dict = field(default_factory=dict)

    @property
    def missed(self) -> int:
        return self.totals.get("missed", 0)

    @property
    def ok(self) -> bool:
        return self.missed == 0

    def to_json(self) -> str:
        payload = {
            "seed": self.seed,
            "count": self.count,
            "configs": list(self.configs),
            "kinds": list(self.kinds),
            "traps_by_workload": self.traps_by_workload,
            "totals": self.totals,
            "by_kind": self.by_kind,
            "by_config": self.by_config,
            "runs": self.runs,
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def summary(self) -> str:
        lines = [
            f"fault sweep: seed={self.seed} plans={self.count} "
            f"configs={len(self.configs)} runs={self.totals.get('injected', 0)}",
            "",
            f"{'kind':<16} {'detected':>9} {'benign':>7} {'missed':>7}",
        ]
        for kind in self.kinds:
            counts = self.by_kind.get(kind, {})
            lines.append(
                f"{kind:<16} {counts.get('detected', 0):>9} "
                f"{counts.get('benign', 0):>7} {counts.get('missed', 0):>7}"
            )
        lines.append("")
        for name in self.configs:
            counts = self.by_config.get(name, {})
            lines.append(
                f"  {name:<16} detected={counts.get('detected', 0)} "
                f"benign={counts.get('benign', 0)} "
                f"missed={counts.get('missed', 0)}"
            )
        verdict = "OK: 0 missed" if self.ok else f"FAIL: {self.missed} MISSED"
        lines += ["", verdict]
        return "\n".join(lines)


def run_sweep(
    key: Key = None,
    seed: int = 20050926,
    count: int = 200,
    config_names=None,
    kinds=None,
    metrics=None,
    recorder=None,
) -> SweepReport:
    """Generate ``count`` plans from ``seed`` and replay each on every
    selected engine config (see module docstring for the contract).

    ``metrics`` (a :class:`~repro.obs.MetricsRegistry`) and
    ``recorder`` receive ``faults.*`` counters and per-run spans; both
    are optional and, being host-side observability, never feed back
    into outcomes."""
    key = key or Key.generate()
    configs = configs_named(config_names)
    workloads = build_workloads(key)

    # Clean references per (config, workload); identical-across-configs
    # by the engine-equivalence contract, asserted here.
    references: dict = {}
    traps_by_workload: dict = {}
    for config in configs:
        for workload in _WORKLOADS:
            outcome = run_workload(key, config, workloads, workload)
            if outcome.killed:
                raise RuntimeError(
                    f"clean {workload} run died on {config.name}: "
                    f"{outcome.kill_reason}"
                )
            references[(config.name, workload)] = outcome
            first = references[(configs[0].name, workload)]
            if portable_signature(outcome) != portable_signature(first):
                raise RuntimeError(
                    f"engine-equivalence violation: clean {workload} run "
                    f"differs between {configs[0].name} and {config.name}"
                )
            if workload in _TRAP_WORKLOADS:
                traps_by_workload[workload] = outcome.traps

    plans = generate_plans(
        seed, count, traps_by_workload, section_sizes(workloads), kinds
    )
    report = SweepReport(
        seed=seed,
        count=count,
        configs=tuple(config.name for config in configs),
        kinds=tuple(
            dict.fromkeys(plan.kind for plan in plans)  # ordered, unique
        ),
        traps_by_workload=dict(sorted(traps_by_workload.items())),
    )
    tally_totals = {outcome: 0 for outcome in OUTCOMES}
    tally_totals["injected"] = 0
    by_kind: dict = {}
    by_config: dict = {}

    for plan in plans:
        for config in configs:
            if recorder is not None and recorder.enabled:
                recorder.begin(f"fault:{plan.kind}:{config.name}", "faults")
            outcome = run_workload(
                key, config, workloads, plan.workload, plan=plan
            )
            verdict = classify(
                plan, references[(config.name, plan.workload)], outcome
            )
            if recorder is not None and recorder.enabled:
                recorder.end()
            tally_totals["injected"] += 1
            tally_totals[verdict] += 1
            by_kind.setdefault(plan.kind, dict.fromkeys(OUTCOMES, 0))[verdict] += 1
            by_config.setdefault(config.name, dict.fromkeys(OUTCOMES, 0))[
                verdict
            ] += 1
            if metrics is not None:
                metrics.inc("faults.injected")
                metrics.inc(f"faults.{verdict}")
            if recorder is not None:
                recorder.inc("faults.injected")
                recorder.inc(f"faults.{verdict}")
            report.runs.append(
                {
                    "plan": asdict(plan),
                    "config": config.name,
                    "outcome": verdict,
                    "killed": outcome.killed,
                    "kill_reason": outcome.kill_reason,
                }
            )

    report.totals = tally_totals
    report.by_kind = by_kind
    report.by_config = by_config
    return report
