"""Fault plans: the *what/when/where* of one injected fault.

A :class:`FaultPlan` is a pure data description of a single fault —
which corruption to apply (``kind``), when to apply it (the Nth
authenticated trap, or a scheduler parameter), and where (a seeded
byte offset / bit index / register selector).  Plans carry no live
object references, so the same plan can be replayed against every
engine configuration and serialized verbatim into the coverage report.

Everything is derived from one :class:`random.Random` seeded by the
sweep seed; together with the simulator's own determinism (fixed
epoch, no host randomness, instruction-count scheduling) this makes a
whole sweep — plans, outcomes, report JSON — bit-identical across
re-runs with the same seed.

The fault model follows the hardware-fault literature the motivation
cites (SFP, SFIP): single-event upsets in policy material and MAC
state, tampered trap-time register/immediate values, desynchronized
replay nonces, and perturbed preemption points — not crafted inputs
(those are the attack battery's job).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

#: Every fault kind the battery injects.  ``expected`` outcome classes:
#:
#: - must-detect — the corruption lands on material a §3.4 check reads
#:   before the trap can proceed, so the kernel must fail-stop with a
#:   correctly attributed reason;
#: - detect-or-benign — a seeded flip that may land on dead state (a
#:   record whose site never traps again, inter-record padding); dead
#:   hits must leave the run bit-identical;
#: - must-benign — scheduler perturbations: preemption order must never
#:   change any per-process result.
KINDS = (
    "record-flip",      # random bit anywhere in .authdata
    "mac-flip",         # bit in the live trap's callMAC
    "as-flip",          # bit in the live trap's AS material (mac/len/content)
    "mac-transplant",   # replace the live callMAC with another site's
    "reg-tamper",       # bit in a constrained register at trap time
    "sock-reg-tamper",  # bit in a send ptr / recv length (netserver)
    "prewarm-flip",     # post-warm-up bit in a pre-verified span
    "counter-desync",   # bump the kernel's per-process auth counter
    "lastblock-flip",   # bit in the .polstate lastBlock/lbMAC cell
    "sched-jitter",     # seeded timeslice under the scheduler
    "sched-preempt",    # tiny timeslice + seeded run-queue rotation
)

#: kind -> expected outcome class (see above).
EXPECTATIONS = {
    "record-flip": "any",
    "mac-flip": "detected",
    "as-flip": "detected",
    "mac-transplant": "detected",
    "reg-tamper": "detected",
    "sock-reg-tamper": "detected",
    "prewarm-flip": "any",
    "counter-desync": "detected",
    "lastblock-flip": "detected",
    "sched-jitter": "benign",
    "sched-preempt": "benign",
}

#: kind -> violation families (see repro.kernel.auth.VIOLATION_FAMILIES)
#: that count as a *correctly attributed* detection.  A kill whose
#: reason falls outside the kind's set is a misattribution and is
#: classified MISSED, not detected.
ALLOWED_FAMILIES = {
    # A random .authdata flip can land in any record field, so any
    # checker family is a correct attribution.
    "record-flip": {
        "record", "call-mac", "string-auth", "policy-state",
        "control-flow", "pattern",
    },
    "mac-flip": {"call-mac"},
    # An AS flip surfaces as a call-MAC mismatch (the encoded call
    # embeds the AS header), a string-auth failure (content flips), or
    # a record fault (a flipped length walks off mapped memory).
    "as-flip": {"call-mac", "string-auth", "record"},
    "mac-transplant": {"call-mac"},
    "reg-tamper": {"call-mac", "record", "string-auth", "pattern"},
    # Every netserver send passes its buffer pointer — and every recv
    # its length — as an li constant, so the flip always violates an
    # Immediate constraint.
    "sock-reg-tamper": {"call-mac"},
    "prewarm-flip": {
        "record", "call-mac", "string-auth", "policy-state",
        "control-flow", "pattern",
    },
    "counter-desync": {"policy-state"},
    "lastblock-flip": {"policy-state"},
    "sched-jitter": set(),
    "sched-preempt": set(),
}

#: Kinds that run the multiprogrammed workload under the scheduler.
SCHED_KINDS = ("sched-jitter", "sched-preempt")

#: Kinds that run the netserver workload (scheduler + loopback sockets).
NET_KINDS = ("sock-reg-tamper",)

#: Traps to let pass before a prewarm flip, so every loop-workload site
#: has been fully verified at least once (authcache entries stored,
#: verifier thunks compiled) and the flip genuinely stresses the
#: write-version guards over pre-verified spans.
WARMUP_TRAPS = 7


@dataclass(frozen=True)
class FaultPlan:
    """One seeded fault (see module docstring)."""

    fault_id: int
    kind: str
    workload: str
    #: Inject right before the Nth authenticated trap (trap-triggered
    #: kinds only; the corruption therefore lands on that trap's own
    #: verification for live-material kinds).
    trap_index: int = 0
    #: Seeded selector: byte offset within the target span, or index
    #: into the constrained-register / donor-record list.
    offset: int = 0
    bit: int = 0
    #: Section for span flips (record-flip / prewarm-flip).
    section: str = ""
    #: Counter increment for counter-desync.
    delta: int = 0
    #: Scheduler parameters (sched kinds).
    timeslice: int = 0
    rotate_every: int = 0
    #: Expected outcome class: "detected" | "benign" | "any".
    expected: str = "detected"

    def describe(self) -> str:
        where = self.section or f"trap {self.trap_index}"
        return f"{self.kind} on {self.workload} ({where})"


@dataclass(frozen=True)
class EngineConfig:
    """One kernel/engine configuration the sweep replays every plan on."""

    name: str
    engine: str
    chain: bool = True
    verifier_jit: bool = True
    fastpath: bool = True

    def kernel_kwargs(self) -> dict:
        return {
            "engine": self.engine,
            "chain": self.chain,
            "verifier_jit": self.verifier_jit,
            "fastpath": self.fastpath,
        }


#: The five configurations of the verification/execution stack: the
#: reference interpreter, the chained threaded engine, chaining
#: disabled, the verifier JIT disabled, and the fast-path cache
#: disabled (which also disables the JIT that rides on it).  Detection
#: coverage is a security property and must be identical on all five.
CONFIGS = (
    EngineConfig("interp", "interp"),
    EngineConfig("chained", "threaded"),
    EngineConfig("no-chain", "threaded", chain=False),
    EngineConfig("no-verifier-jit", "threaded", verifier_jit=False),
    EngineConfig("no-fastpath", "threaded", fastpath=False),
)

CONFIG_NAMES = tuple(config.name for config in CONFIGS)


def configs_named(names=None) -> tuple:
    """Resolve config names to :data:`CONFIGS` entries (all when None)."""
    if not names:
        return CONFIGS
    by_name = {config.name: config for config in CONFIGS}
    unknown = [name for name in names if name not in by_name]
    if unknown:
        raise ValueError(f"unknown engine config(s): {', '.join(unknown)}")
    return tuple(by_name[name] for name in names)


def generate_plans(
    seed: int,
    count: int,
    traps_by_workload: dict,
    section_sizes: dict,
    kinds=None,
) -> list[FaultPlan]:
    """Derive ``count`` plans from ``seed``.

    ``traps_by_workload`` maps workload name -> authenticated-trap
    count of the clean run (bit-identical across configs by the engine
    equivalence contract, so any config's reference provides it).
    ``section_sizes`` maps (workload, section) -> byte length, used to
    bound span-flip offsets.  Same arguments -> identical plan list.
    """
    rng = random.Random(seed)
    chosen_kinds = tuple(kinds) if kinds else KINDS
    for kind in chosen_kinds:
        if kind not in KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
    plans: list[FaultPlan] = []
    for fault_id in range(count):
        kind = chosen_kinds[fault_id % len(chosen_kinds)]
        if kind in SCHED_KINDS:
            plans.append(_sched_plan(fault_id, kind, rng))
        else:
            plans.append(
                _trap_plan(
                    fault_id, kind, rng, traps_by_workload, section_sizes
                )
            )
    return plans


def _trap_plan(
    fault_id: int,
    kind: str,
    rng: random.Random,
    traps_by_workload: dict,
    section_sizes: dict,
) -> FaultPlan:
    if kind == "prewarm-flip":
        workload = "loop"  # needs repeated traps per site to warm up
    elif kind in NET_KINDS:
        workload = "netserver"  # sockets + scheduler; forked clients
    else:
        # Mostly the loop workload (warm sites, many traps); the victim
        # adds string-argument material and an execve site.
        workload = "loop" if rng.random() < 0.7 else "victim"
    traps = traps_by_workload[workload]
    if kind == "prewarm-flip":
        trap_index = rng.randrange(WARMUP_TRAPS, traps)
        section = rng.choice((".authdata", ".authstr"))
    elif kind in ("record-flip",):
        trap_index = rng.randrange(traps)
        section = ".authdata"
    else:
        trap_index = rng.randrange(traps)
        section = ""
    offset = rng.randrange(0, 1 << 16)
    if section:
        offset = rng.randrange(section_sizes[(workload, section)])
    return FaultPlan(
        fault_id=fault_id,
        kind=kind,
        workload=workload,
        trap_index=trap_index,
        offset=offset,
        bit=rng.randrange(32),
        section=section,
        delta=1 + rng.randrange(8),
        expected=EXPECTATIONS[kind],
    )


def _sched_plan(fault_id: int, kind: str, rng: random.Random) -> FaultPlan:
    if kind == "sched-jitter":
        timeslice = rng.randrange(1, 400)
        rotate_every = 0
    else:  # sched-preempt: near-minimal slices plus run-queue rotation
        timeslice = rng.randrange(1, 40)
        rotate_every = 1 + rng.randrange(4)
    return FaultPlan(
        fault_id=fault_id,
        kind=kind,
        workload="loop-sched",
        timeslice=timeslice,
        rotate_every=rotate_every,
        expected="benign",
    )
