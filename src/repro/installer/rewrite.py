"""Binary rewriting: SYS -> authenticated ASYS (§3.3).

The rewrite phase runs on the IR, after analysis and policy
generation.  It:

1. creates the three installer sections — ``.authstr`` (authenticated
   strings), ``.authdata`` (per-site authentication records),
   ``.polstate`` (the writable lastBlock/lbMAC policy state);
2. moves each policy-constrained string constant into an AS in
   ``.authstr`` and *re-points its symbol* at the AS content, so every
   reference in the program now passes an AS pointer without touching
   the referencing code (§3.2's pointer replacement);
3. emits one authentication record per call site, with relocations for
   its embedded pointers and a zeroed call MAC;
4. replaces each ``SYS`` with ``LI r7, <record>; ASYS``.

Call MACs depend on final absolute addresses, so they are filled in by
:func:`repro.installer.core.sign` after layout.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional

from repro.binfmt import Relocation
from repro.binfmt.symbols import Symbol
from repro.crypto import MAC_SIZE, MacProvider
from repro.isa import Instruction, SymbolRef
from repro.isa.opcodes import Op
from repro.installer.policygen import AnalysisResult
from repro.plto.ir import IrInsn, IrUnit
from repro.policy.authstrings import AS_HEADER_SIZE, build_authenticated_string
from repro.policy.descriptor import ParamClass
from repro.policy.encode import pack_predecessor_set
from repro.policy.model import ProgramPolicy, SyscallPolicy
from repro.policy.record import pack_policy_state, state_mac_payload

POLSTATE_SYMBOL = "__asc_polstate"

#: Record field offsets (see repro.policy.record).
_REC_PREDSET_PTR = 8
_REC_LBPTR = 12
_REC_CALLMAC = 16


@dataclass
class SiteRewrite:
    """Bookkeeping for one rewritten call site, consumed by the signer."""

    cfg_block_index: int
    policy: SyscallPolicy
    call_label: str
    record_symbol: str
    record_offset: int
    #: param index -> symbol whose address is the AS content (strings
    #: and patterns).
    string_symbols: dict[int, str] = field(default_factory=dict)
    predset_symbol: Optional[str] = None
    predset_content: bytes = b""
    capability_symbol: Optional[str] = None
    capability_content: bytes = b""
    fd_mask: int = 0


@dataclass
class RewriteResult:
    sites: list[SiteRewrite]
    #: original string symbol -> (AS content symbol, content bytes)
    moved_strings: dict[str, bytes]


def rewrite_unit(
    unit: IrUnit,
    analysis: AnalysisResult,
    program_policy: ProgramPolicy,
    mac: MacProvider,
) -> RewriteResult:
    binary = unit.binary
    authstr = binary.get_or_create_section(".authstr")
    authdata = binary.get_or_create_section(".authdata")
    polstate = binary.get_or_create_section(".polstate")

    # -- policy state: lastBlock = <entry pseudo block>, counter = 0 ----
    initial_block = program_policy.program_id << 20
    initial_mac = mac.tag(state_mac_payload(initial_block, 0))
    offset = polstate.append(pack_policy_state(initial_block, initial_mac))
    binary.define_symbol(POLSTATE_SYMBOL, ".polstate", offset)

    # -- move constrained string constants into authenticated strings ---
    moved: dict[str, bytes] = {}

    def move_string(symbol_name: str, content: bytes) -> str:
        if symbol_name in moved:
            return symbol_name
        record = build_authenticated_string(content, mac)
        start = authstr.append(record)
        original = binary.symbols[symbol_name]
        binary.symbols[symbol_name] = Symbol(
            symbol_name, ".authstr", start + AS_HEADER_SIZE, original.binding
        )
        moved[symbol_name] = content
        return symbol_name

    def fresh_as(stem: str, content: bytes) -> str:
        record = build_authenticated_string(content, mac)
        start = authstr.append(record)
        name = f"__asc_{stem}"
        binary.define_symbol(name, ".authstr", start + AS_HEADER_SIZE)
        return name

    sites: list[SiteRewrite] = []
    for serial, (block_index, policy) in enumerate(
        sorted(program_policy.sites.items())
    ):
        descriptor = policy.descriptor()
        site = SiteRewrite(
            cfg_block_index=block_index,
            policy=policy,
            call_label=f"__asc_call_{serial}",
            record_symbol=f"__asc_rec_{serial}",
            record_offset=0,
        )

        for index, param in sorted(policy.params.items()):
            if param.pattern is not None:
                site.string_symbols[index] = fresh_as(
                    f"pat_{serial}_{index}", param.pattern.encode("utf-8")
                )
            elif param.kind is ParamClass.STRING:
                assert isinstance(param.symbol, SymbolRef)
                site.string_symbols[index] = move_string(
                    param.symbol.symbol, param.value
                )

        if policy.control_flow:
            site.predset_content = pack_predecessor_set(policy.predecessors)
            site.predset_symbol = fresh_as(f"pred_{serial}", site.predset_content)

        if policy.fd_producers:
            producers: set[int] = set()
            for index, sources in sorted(policy.fd_producers.items()):
                site.fd_mask |= 1 << index
                producers.update(sources)
            site.capability_content = pack_predecessor_set(frozenset(producers))
            site.capability_symbol = fresh_as(
                f"cap_{serial}", site.capability_content
            )

        # -- emit the record ------------------------------------------------
        record = bytearray()
        record += struct.pack("<II", int(descriptor), policy.block_id)
        record += struct.pack("<II", 0, 0)  # predSetPtr, lbPtr (relocated)
        record += bytes(MAC_SIZE)  # call MAC, signed later
        pattern_field_offsets = []
        for index in descriptor.pattern_params():
            pattern_field_offsets.append(len(record))
            record += struct.pack("<I", 0)
        capability_field_offset = None
        if descriptor.capability_tracked:
            capability_field_offset = len(record) + 4
            record += struct.pack("<II", site.fd_mask, 0)

        start = authdata.append(bytes(record))
        site.record_offset = start
        binary.define_symbol(site.record_symbol, ".authdata", start)

        if policy.control_flow:
            binary.add_relocation(
                Relocation(".authdata", start + _REC_PREDSET_PTR, site.predset_symbol)
            )
            binary.add_relocation(
                Relocation(".authdata", start + _REC_LBPTR, POLSTATE_SYMBOL)
            )
        for field_offset, index in zip(
            pattern_field_offsets, descriptor.pattern_params()
        ):
            binary.add_relocation(
                Relocation(
                    ".authdata", start + field_offset, site.string_symbols[index]
                )
            )
        if capability_field_offset is not None:
            binary.add_relocation(
                Relocation(
                    ".authdata",
                    start + capability_field_offset,
                    site.capability_symbol,
                )
            )
        sites.append(site)

    # -- replace each SYS with LI r7, <record>; ASYS --------------------
    # Descending instruction order keeps earlier indices valid.
    by_insn = sorted(
        sites,
        key=lambda s: analysis.sites[s.cfg_block_index].insn_index,
        reverse=True,
    )
    for site in by_insn:
        position = analysis.sites[site.cfg_block_index].insn_index
        original = unit.insns[position].instruction
        if original.op != Op.SYS:
            raise ValueError(
                f"expected SYS at insn {position}, found {original}"
            )
        unit.replace(
            position,
            [
                IrInsn(
                    Instruction(Op.LI, regs=(7,), imm=SymbolRef(site.record_symbol))
                ),
                IrInsn(Instruction(Op.ASYS), labels=[site.call_label]),
            ],
        )

    return RewriteResult(sites=sites, moved_strings=moved)
