"""Per-syscall argument signatures used by policy generation.

The installer needs to know, for each system call, how many arguments
it takes, which are *output-only* (addresses the kernel writes results
into — Table 3's ``o/p`` column; never constrained), which take file
descriptors (candidates for §5.3 capability tracking), and which take
path/string pointers (AS candidates).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SyscallSignature:
    name: str
    nargs: int
    #: Output-only argument indices (kernel writes through the pointer).
    outputs: frozenset = frozenset()
    #: Arguments that are file descriptors returned by earlier calls.
    fd_args: frozenset = frozenset()
    #: Arguments that are NUL-terminated string/path pointers.
    string_args: frozenset = frozenset()


def _sig(name, nargs, outputs=(), fd_args=(), string_args=()):
    return SyscallSignature(
        name=name,
        nargs=nargs,
        outputs=frozenset(outputs),
        fd_args=frozenset(fd_args),
        string_args=frozenset(string_args),
    )


SIGNATURES: dict[str, SyscallSignature] = {
    s.name: s
    for s in [
        _sig("exit", 1),
        _sig("fork", 0),
        _sig("read", 3, outputs=(1,), fd_args=(0,)),
        _sig("write", 3, fd_args=(0,)),
        _sig("open", 3, string_args=(0,)),
        _sig("close", 1, fd_args=(0,)),
        _sig("unlink", 1, string_args=(0,)),
        _sig("execve", 3, string_args=(0,)),
        _sig("chdir", 1, string_args=(0,)),
        _sig("time", 1, outputs=(0,)),
        _sig("chmod", 2, string_args=(0,)),
        _sig("lseek", 3, fd_args=(0,)),
        _sig("getpid", 0),
        _sig("getuid", 0),
        _sig("access", 2, string_args=(0,)),
        _sig("kill", 2),
        _sig("rename", 2, string_args=(0, 1)),
        _sig("mkdir", 2, string_args=(0,)),
        _sig("rmdir", 1, string_args=(0,)),
        _sig("dup", 1, fd_args=(0,)),
        _sig("pipe", 1, outputs=(0,)),
        _sig("brk", 1),
        _sig("geteuid", 0),
        _sig("ioctl", 3, fd_args=(0,)),
        _sig("fcntl", 3, fd_args=(0,)),
        _sig("umask", 1),
        _sig("dup2", 2, fd_args=(0, 1)),
        _sig("getppid", 0),
        _sig("sigaction", 3, outputs=(2,)),
        _sig("gettimeofday", 2, outputs=(0, 1)),
        _sig("symlink", 2, string_args=(0, 1)),
        _sig("readlink", 3, outputs=(1,), string_args=(0,)),
        _sig("mmap", 6, fd_args=(4,)),
        _sig("munmap", 2),
        _sig("socket", 3),
        _sig("fstatfs", 2, outputs=(1,), fd_args=(0,)),
        _sig("stat", 2, outputs=(1,), string_args=(0,)),
        _sig("fstat", 2, outputs=(1,), fd_args=(0,)),
        _sig("uname", 1, outputs=(0,)),
        _sig("sendto", 6, fd_args=(0,)),
        _sig("writev", 3, fd_args=(0,)),
        _sig("nanosleep", 2, outputs=(1,)),
        _sig("getdirentries", 4, outputs=(1, 3), fd_args=(0,)),
        # The OpenBSD indirect syscall: arg 0 is the real number; the
        # rest are opaque (they belong to the inner call).
        _sig("__syscall", 6),
        _sig("sysconf", 1),
        _sig("madvise", 3),
        _sig("link", 2, string_args=(0, 1)),
        _sig("alarm", 1),
        _sig("utime", 2, string_args=(0,)),
        _sig("sync", 0),
        _sig("times", 1, outputs=(0,)),
        _sig("getgid", 0),
        _sig("getegid", 0),
        _sig("setuid", 1),
        _sig("setgid", 1),
        _sig("getpgrp", 0),
        _sig("setsid", 0),
        _sig("sigprocmask", 3, outputs=(2,)),
        _sig("getrlimit", 2, outputs=(1,)),
        _sig("setrlimit", 2),
        _sig("getrusage", 2, outputs=(1,)),
        _sig("truncate", 2, string_args=(0,)),
        _sig("ftruncate", 2, fd_args=(0,)),
        _sig("fchmod", 2, fd_args=(0,)),
        _sig("fchown", 3, fd_args=(0,)),
        _sig("chown", 3, string_args=(0,)),
        _sig("getcwd", 2, outputs=(0,)),
        _sig("fchdir", 1, fd_args=(0,)),
        _sig("flock", 2, fd_args=(0,)),
        _sig("fsync", 1, fd_args=(0,)),
        _sig("select", 5, outputs=(1, 2, 3)),
        _sig("poll", 3, outputs=(0,)),
        _sig("mprotect", 3),
        _sig("getpriority", 2),
        _sig("setpriority", 3),
        _sig("statfs", 2, outputs=(1,), string_args=(0,)),
        _sig("getgroups", 2, outputs=(1,)),
        _sig("sched_yield", 0),
        _sig("wait4", 4, outputs=(1, 3)),
        _sig("mlock", 2),
        _sig("munlock", 2),
        _sig("readv", 3, outputs=(1,), fd_args=(0,)),
        _sig("spawn", 2, string_args=(0,)),
        # Loopback networking (kernel/net/).  Addresses are NUL-terminated
        # strings, so constant bind/connect targets become authenticated
        # string parameters — the name a server listens on (and the name
        # a client dials) is part of the signed per-site policy.
        _sig("bind", 3, fd_args=(0,), string_args=(1,)),
        _sig("listen", 2, fd_args=(0,)),
        _sig("accept", 3, outputs=(1, 2), fd_args=(0,)),
        _sig("connect", 3, fd_args=(0,), string_args=(1,)),
        _sig("send", 4, fd_args=(0,)),
        _sig("recv", 4, outputs=(1,), fd_args=(0,)),
        _sig("recvfrom", 6, outputs=(1, 4, 5), fd_args=(0,)),
        _sig("shutdown", 2, fd_args=(0,)),
    ]
}


def signature_for(name: str) -> SyscallSignature:
    try:
        return SIGNATURES[name]
    except KeyError:
        # Unknown calls are treated as 6 opaque arguments.
        return SyscallSignature(name=name, nargs=6)
