"""The trusted installer (§3.3): analyze, generate, rewrite, sign.

``install()`` is the whole pipeline the security administrator runs::

    installed = install(binary, key=machine_key)
    kernel.run(installed.binary)          # kernel holds the same key

The produced binary is statically linked and non-relocatable in
spirit — its policies embed the absolute addresses of every call site —
exactly as the paper's installer output is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.binfmt import SefBinary
from repro.binfmt.image import assign_addresses
from repro.crypto import Key, MacProvider, mac_provider_for_key
from repro.installer.policygen import (
    GenerationOptions,
    analyze,
    generate_policies,
)
from repro.installer.rewrite import RewriteResult, rewrite_unit
from repro.plto import disassemble, inline_syscall_stubs, reassemble
from repro.plto.passes import run_baseline_passes
from repro.policy.descriptor import ParamClass
from repro.policy.encode import ParamEncoding, encode_policy
from repro.policy.metapolicy import MetaPolicy, PolicyTemplate
from repro.policy.model import ParamPolicy, ProgramPolicy


@dataclass
class InstallerOptions:
    """Administrator-facing configuration."""

    control_flow: bool = True
    #: §5.5: namespace block ids per program (Frankenstein defense).
    program_id: int = 0
    #: §5.3: emit capability-tracking constraints for fd arguments.
    capability_tracking: bool = False
    #: §5.2: metapolicy to evaluate; unmet requirements become template
    #: holes that ``template_fills`` must cover.
    metapolicy: Optional[MetaPolicy] = None
    #: (syscall name, param index) -> constant (int/bytes) or pattern
    #: (str); applied to every matching template hole.
    template_fills: dict = field(default_factory=dict)
    #: Run PLTO's baseline optimization passes (on by default, matching
    #: the paper's measurement methodology).
    baseline_passes: bool = True


@dataclass
class InstalledProgram:
    """The installer's output."""

    binary: SefBinary
    policy: ProgramPolicy
    #: How many call sites were rewritten.
    sites_rewritten: int
    #: Labels of inlined stubs, for reports.
    inlined_stubs: list[str]
    template: Optional[PolicyTemplate] = None
    #: call-site address -> the site's record symbol in .authdata
    site_records: dict = field(default_factory=dict)

    def site_for_syscall(self, syscall: str) -> int:
        """Call-site address of the first policy site for ``syscall``."""
        for address, policy in sorted(self.policy.sites.items()):
            if policy.syscall == syscall:
                return address
        raise KeyError(f"no {syscall!r} site in {self.policy.program}")


class InstallError(ValueError):
    """Installation cannot proceed (analysis failure, unfilled holes)."""


def install(
    binary: SefBinary,
    key: Key,
    options: Optional[InstallerOptions] = None,
) -> InstalledProgram:
    """Run the full installation pipeline on a relocatable binary."""
    options = options or InstallerOptions()
    mac = mac_provider_for_key(key)

    if binary.metadata.get("authenticated") == "yes":
        raise InstallError(
            "binary is already installed; re-installation would double-"
            "rewrite its call sites (install the original instead)"
        )
    source = SefBinary.from_bytes(binary.to_bytes())  # defensive copy
    unit = disassemble(source)
    if options.baseline_passes:
        run_baseline_passes(unit)
    inline_report = inline_syscall_stubs(unit)
    analysis = analyze(unit)

    program = source.metadata.get("program", source.entry)
    personality = source.metadata.get("personality", "linux")
    policy = generate_policies(
        analysis,
        program=program,
        personality=personality,
        options=GenerationOptions(
            control_flow=options.control_flow,
            program_id=options.program_id,
            capability_tracking=options.capability_tracking,
        ),
    )

    template = _apply_metapolicy(policy, options)

    rewrite = rewrite_unit(unit, analysis, policy, mac)
    installed = reassemble(unit)
    installed.metadata["authenticated"] = "yes"
    installed.metadata["program_id"] = str(options.program_id)

    _sign(installed, rewrite, mac)
    _rekey_by_call_site(installed, policy, rewrite)

    return InstalledProgram(
        binary=installed,
        policy=policy,
        sites_rewritten=len(rewrite.sites),
        inlined_stubs=inline_report.stubs,
        template=template,
        site_records={
            site.policy.call_site: site.record_symbol for site in rewrite.sites
        },
    )


def generate_policy_only(
    binary: SefBinary,
    options: Optional[InstallerOptions] = None,
) -> ProgramPolicy:
    """Policy generation without rewriting — the configuration used for
    the cross-OS comparison of §4.2 (the OpenBSD port generates
    policies but kernel checking is Linux-only)."""
    options = options or InstallerOptions()
    source = SefBinary.from_bytes(binary.to_bytes())
    unit = disassemble(source)
    if options.baseline_passes:
        run_baseline_passes(unit)
    inline_syscall_stubs(unit)
    analysis = analyze(unit)
    policy = generate_policies(
        analysis,
        program=source.metadata.get("program", source.entry),
        personality=source.metadata.get("personality", "linux"),
        options=GenerationOptions(
            control_flow=options.control_flow,
            program_id=options.program_id,
            capability_tracking=options.capability_tracking,
            strict=False,
        ),
    )
    # Fill in call-site addresses from the analyzed (stub-inlined)
    # layout and re-key like the full installer does; policy-only
    # output is then directly comparable, renderable, and exportable.
    text_base = assign_addresses(reassemble(unit))[".text"]
    by_site = {}
    for block_index, site_policy in sorted(policy.sites.items()):
        insn_index = analysis.sites[block_index].insn_index
        site_policy.call_site = text_base + insn_index * 8
        by_site[site_policy.call_site] = site_policy
    policy.sites = by_site
    return policy


def _apply_metapolicy(
    policy: ProgramPolicy, options: InstallerOptions
) -> Optional[PolicyTemplate]:
    """Evaluate the metapolicy and apply template fills (§5.2)."""
    if options.metapolicy is None:
        if options.template_fills:
            _apply_fills_directly(policy, options.template_fills)
        return None
    template = options.metapolicy.evaluate(policy)
    for hole in template.holes:
        fill = options.template_fills.get((hole.syscall, hole.param_index))
        if fill is not None:
            template.fill(hole.call_site, hole.param_index, fill)
    if not template.complete:
        unfilled = [
            hole
            for hole in template.holes
            if (hole.call_site, hole.param_index) not in template.fills
        ]
        raise InstallError(
            f"metapolicy requirements unmet for {policy.program}: "
            + ", ".join(
                f"{hole.syscall} param {hole.param_index}" for hole in unfilled
            )
        )
    template.resolve()
    return template


def _apply_fills_directly(policy: ProgramPolicy, fills: dict) -> None:
    """Without a metapolicy, fills act as administrator overrides."""
    for site_policy in policy.sites.values():
        for (syscall, index), value in fills.items():
            if site_policy.syscall != syscall or index in site_policy.params:
                continue
            if isinstance(value, int):
                # Immediates work for dynamic arguments directly: the
                # runtime register value feeds the encoded call, so the
                # MAC matches iff the value matches.
                site_policy.params[index] = ParamPolicy(
                    index, ParamClass.IMMEDIATE, value
                )
            else:
                # String fills become (possibly literal) patterns: the
                # argument is dynamic, so it cannot be AS-rewritten; the
                # kernel instead pattern-matches its content (§5.1).  A
                # constant string is the degenerate zero-hint pattern.
                text = value.decode("utf-8") if isinstance(value, bytes) else str(value)
                site_policy.params[index] = ParamPolicy(
                    index, ParamClass.STRING, text.encode(), pattern=text
                )


def _sign(installed: SefBinary, rewrite: RewriteResult, mac: MacProvider) -> None:
    """Fill every record's call MAC now that addresses are final."""
    section_bases = assign_addresses(installed)

    def address_of(symbol: str) -> int:
        entry = installed.symbols[symbol]
        return section_bases[entry.section] + entry.offset

    authdata = installed.section(".authdata")
    for site in rewrite.sites:
        policy = site.policy
        policy.call_site = address_of(site.call_label)
        descriptor = policy.descriptor()

        params: list[ParamEncoding] = []
        for index, param in sorted(policy.params.items()):
            if index in site.string_symbols:
                content = (
                    param.pattern.encode("utf-8")
                    if param.pattern is not None
                    else param.value
                )
                params.append(
                    ParamEncoding.auth_string(
                        index,
                        address_of(site.string_symbols[index]),
                        len(content),
                        mac.tag(content),
                    )
                )
            elif param.symbol is not None:
                ref = param.symbol
                params.append(
                    ParamEncoding.immediate(
                        index, address_of(ref.symbol) + ref.addend
                    )
                )
            else:
                params.append(ParamEncoding.immediate(index, param.value))

        predset = None
        lastblock_address = 0
        if policy.control_flow:
            predset = (
                address_of(site.predset_symbol),
                len(site.predset_content),
                mac.tag(site.predset_content),
            )
            lastblock_address = address_of("__asc_polstate")

        capability = None
        if descriptor.capability_tracked:
            capability = (
                site.fd_mask,
                (
                    address_of(site.capability_symbol),
                    len(site.capability_content),
                    mac.tag(site.capability_content),
                ),
            )

        encoded = encode_policy(
            descriptor,
            policy.number,
            policy.call_site,
            policy.block_id,
            params,
            predset=predset,
            lastblock_address=lastblock_address,
            capability=capability,
        )
        call_mac = mac.tag(encoded)
        start = site.record_offset + 16
        authdata.data[start : start + len(call_mac)] = call_mac


def _rekey_by_call_site(
    installed: SefBinary, policy: ProgramPolicy, rewrite: RewriteResult
) -> None:
    """Policies were keyed by CFG block during generation; the public
    object is keyed by absolute call-site address (§3.1's form)."""
    by_site = {}
    for site in rewrite.sites:
        by_site[site.policy.call_site] = site.policy
    policy.sites = by_site
