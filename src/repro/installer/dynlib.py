"""Dynamic-library processing (§5.2).

With dynamic libraries, call sites are unknown until load time and
argument values often arrive via library-function parameters, so the
basic approach cannot produce complete policies for every function.
The paper's procedure:

    "The dynamic libraries on a machine are installed first ...  if a
    system call in a dynamic library function cannot satisfy the
    metapolicy — that is, static analysis cannot generate a complete
    policy — the specific function is removed from the dynamic library
    and set aside for static linking with application programs that
    require the function.  Once this has been done for all system
    calls in the library, the functions that remain have their system
    calls transformed into authenticated calls in the same manner as
    before."

A library here is a collection of named functions, each a small
relocatable binary (SVM32 has no dynamic loader; what matters — and
what this module implements — is the *triage*: which functions can be
protected in-place under a given metapolicy and which must be
withdrawn for static linking).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.binfmt import SefBinary
from repro.installer.core import InstallerOptions, generate_policy_only
from repro.plto.ir import DisassemblyError
from repro.policy.metapolicy import MetaPolicy


@dataclass
class LibraryFunction:
    """One exported function, packaged as a standalone analyzable unit."""

    name: str
    binary: SefBinary


@dataclass
class DynamicLibrary:
    name: str
    functions: list = field(default_factory=list)

    def add(self, function: LibraryFunction) -> None:
        self.functions.append(function)


@dataclass
class LibraryInstallReport:
    """Outcome of processing one library under a metapolicy."""

    library: str
    #: Functions whose every call site satisfies the metapolicy; these
    #: stay in the shared library with authenticated calls.
    protected: list = field(default_factory=list)
    #: Functions withdrawn for static linking, with the reason.
    withdrawn: dict = field(default_factory=dict)

    @property
    def protected_fraction(self) -> float:
        total = len(self.protected) + len(self.withdrawn)
        return len(self.protected) / total if total else 1.0


def process_library(
    library: DynamicLibrary,
    metapolicy: Optional[MetaPolicy] = None,
    options: Optional[InstallerOptions] = None,
) -> LibraryInstallReport:
    """Triage a library's functions under the machine metapolicy.

    Note §5.2's constraint: a shared library serves many applications
    but is installed once, so "this metapolicy must be as strict as the
    metapolicies of the applications that use the library" — callers
    pass the machine-wide strictest metapolicy here."""
    metapolicy = metapolicy or MetaPolicy.high_threat_default()
    options = options or InstallerOptions()
    report = LibraryInstallReport(library=library.name)

    for function in library.functions:
        try:
            policy = generate_policy_only(function.binary, options)
        except DisassemblyError as err:
            report.withdrawn[function.name] = f"cannot disassemble: {err}"
            continue
        if policy.unidentified_sites:
            report.withdrawn[function.name] = (
                f"{len(policy.unidentified_sites)} call site(s) with "
                "unidentifiable syscall numbers"
            )
            continue
        unmet = []
        for site_policy in policy.sites.values():
            missing = metapolicy.unmet_requirements(site_policy)
            if missing:
                unmet.append((site_policy.syscall, missing))
        if unmet:
            rendered = "; ".join(
                f"{syscall} missing params {missing}" for syscall, missing in unmet
            )
            report.withdrawn[function.name] = f"metapolicy unmet: {rendered}"
        else:
            report.protected.append(function.name)
    return report
