"""The trusted installer (§3.3).

Reads a relocatable SEF binary, derives per-call-site policies by
static analysis, and rewrites the binary to use authenticated system
calls.  See :func:`repro.installer.core.install` for the pipeline and
:mod:`repro.installer.dynlib` for dynamic-library processing (§5.2).
"""

from repro.installer.core import (
    InstallError,
    InstalledProgram,
    InstallerOptions,
    generate_policy_only,
    install,
)
from repro.installer.policygen import (
    AnalysisResult,
    GenerationOptions,
    PolicyGenerationError,
    analyze,
    generate_policies,
)
from repro.installer.signatures import SIGNATURES, SyscallSignature, signature_for

__all__ = [
    "AnalysisResult",
    "GenerationOptions",
    "InstallError",
    "InstalledProgram",
    "InstallerOptions",
    "PolicyGenerationError",
    "SIGNATURES",
    "SyscallSignature",
    "analyze",
    "generate_policies",
    "generate_policy_only",
    "install",
    "signature_for",
]
