"""Policy generation from static analysis (§3.3, §4.1).

Consumes the PLTO analyses (CFG, call graph, syscall ordering, constant
propagation) and produces the logical :class:`ProgramPolicy`:

- each trap site gets a :class:`SyscallPolicy` constraining the call
  site, the statically determined arguments, and (when enabled) the
  predecessor set from the syscall ordering graph;
- arguments are classified String / Immediate / Unknown exactly as
  §4.1 describes, with output-only arguments excluded and multi-value /
  fd-provenance arguments recorded for Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.binfmt import SefBinary
from repro.isa import SymbolRef
from repro.kernel.syscalls import SYSCALL_NAMES
from repro.installer.signatures import signature_for
from repro.plto.callgraph import (
    CallGraph,
    ENTRY_BLOCK_ID,
    build_call_graph,
    syscall_ordering,
)
from repro.plto.cfg import build_cfg
from repro.plto.dataflow import ArgValue, SyscallSite, classify_syscall_args
from repro.plto.ir import IrUnit
from repro.policy.descriptor import ParamClass
from repro.policy.model import ParamPolicy, ProgramPolicy, SyscallPolicy


class PolicyGenerationError(ValueError):
    """The installer cannot derive a policy (e.g. unknown syscall number)."""


@dataclass
class AnalysisResult:
    """Everything later phases need, computed once."""

    unit: IrUnit
    graph: CallGraph
    #: CFG block index -> SyscallSite (dataflow facts at the trap)
    sites: dict[int, SyscallSite]
    #: block id -> predecessor block ids (already includes ENTRY)
    ordering: dict[int, frozenset[int]]


def analyze(unit: IrUnit) -> AnalysisResult:
    cfg = build_cfg(unit)
    graph = build_call_graph(cfg)
    return AnalysisResult(
        unit=unit,
        graph=graph,
        sites=classify_syscall_args(graph),
        ordering=syscall_ordering(graph),
    )


def _string_constant(binary: SefBinary, ref: SymbolRef) -> Optional[bytes]:
    """If ``ref`` names a NUL-terminated constant in a read-only data
    section, return its bytes (String classification); else None."""
    symbol = binary.symbols.get(ref.symbol)
    if symbol is None or symbol.section not in (".rodata", ".authstr"):
        return None
    section = binary.sections[symbol.section]
    start = symbol.offset + ref.addend
    if not 0 <= start < section.size:
        return None
    end = section.data.find(b"\x00", start)
    if end < 0:
        return None
    return bytes(section.data[start:end])


@dataclass
class GenerationOptions:
    """Knobs for policy generation."""

    control_flow: bool = True
    #: §5.5 Frankenstein defense: namespace block ids by program id.
    program_id: int = 0
    #: §5.3: record fd provenance as capability constraints (extension).
    capability_tracking: bool = False
    #: Strict mode (used by full installation) refuses call sites whose
    #: syscall number is not statically known; non-strict mode (used by
    #: policy-only generation, as on the paper's OpenBSD port) reports
    #: and omits them — the §4.2 ``close`` behaviour.
    strict: bool = True


def _block_id(cfg_index_plus_one: int, options: GenerationOptions) -> int:
    return (options.program_id << 20) | cfg_index_plus_one


def generate_policies(
    analysis: AnalysisResult,
    program: str,
    personality: str = "linux",
    options: Optional[GenerationOptions] = None,
) -> ProgramPolicy:
    """Derive the program's overall policy from the analysis."""
    options = options or GenerationOptions()
    binary = analysis.unit.binary
    policy = ProgramPolicy(
        program=program,
        personality=personality,
        program_id=options.program_id,
    )

    for block_index, site in sorted(analysis.sites.items()):
        if site.number is None:
            if options.strict:
                raise PolicyGenerationError(
                    f"system call number not statically known in block "
                    f"{block_index} — cannot generate a policy"
                )
            policy.unidentified_sites.append(block_index)
            continue
        name = SYSCALL_NAMES.get(site.number, f"syscall#{site.number}")
        signature = signature_for(name)
        block_id = _block_id(block_index + 1, options)

        site_policy = SyscallPolicy(
            syscall=name,
            number=site.number,
            call_site=0,  # absolute address filled in at signing time
            block_id=block_id,
            arg_count=signature.nargs,
            control_flow=options.control_flow,
        )

        outputs: set[int] = set()
        multi: set[int] = set()
        fds: set[int] = set()
        for index in range(signature.nargs):
            value: ArgValue = site.args[index]
            if index in signature.outputs:
                outputs.add(index)
                continue
            if value.is_fd:
                fds.add(index)
                if options.capability_tracking and index in signature.fd_args:
                    site_policy.fd_producers[index] = frozenset(
                        _block_id(b, options) for b in value.fd_sites
                    )
                continue
            if value.is_multi:
                multi.add(index)
                continue
            if not value.is_single:
                continue
            single = value.single
            if isinstance(single, SymbolRef):
                content = _string_constant(binary, single)
                if (
                    content is not None
                    and index in signature.string_args
                    and single.addend == 0
                ):
                    site_policy.params[index] = ParamPolicy(
                        index, ParamClass.STRING, content, symbol=single
                    )
                else:
                    # A known address that is not a string constant: an
                    # Immediate in the paper's classification.  Encoded
                    # symbolically; resolved at signing time.
                    site_policy.params[index] = ParamPolicy(
                        index, ParamClass.IMMEDIATE, 0, symbol=single
                    )
            else:
                site_policy.params[index] = ParamPolicy(
                    index, ParamClass.IMMEDIATE, single & 0xFFFFFFFF
                )

        site_policy.output_params = frozenset(outputs)
        site_policy.multi_value_params = frozenset(multi)
        site_policy.fd_params = frozenset(
            fd for fd in fds if fd in signature.fd_args
        )

        if options.control_flow:
            predecessors = analysis.ordering.get(block_index + 1, frozenset())
            site_policy.predecessors = frozenset(
                _block_id(p, options) if p != ENTRY_BLOCK_ID else (options.program_id << 20)
                for p in predecessors
            )

        # Keyed temporarily by CFG block index; the signer re-keys by
        # absolute call-site address.
        policy.sites[block_index] = site_policy
        policy.syscall_graph[block_id] = site_policy.predecessors

    return policy


