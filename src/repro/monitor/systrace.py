"""A Systrace-like training-based monitor (Provos 2003; §2, §4.2).

Reproduces the three properties of the published policies the paper
compares against:

1. **Training**: the policy is the set of system calls observed on
   sample runs.  Rarely-exercised code paths never execute during
   training, so their calls are missing — the root cause of the 15+
   ASC-only rows in Table 2 (false alarms waiting to happen).
2. **Kernel's-eye view**: the monitor sees the *resolved* operation,
   so OpenBSD's ``__syscall`` indirection records as ``mmap`` — hiding
   the indirection the static analysis correctly reports.
3. **Hand edits**: the published policies use the ``fsread`` /
   ``fswrite`` set aliases; any observed filesystem access admits the
   whole alias set, adding *unneeded* calls (``mkdir``/``rmdir``/
   ``unlink``/``readlink`` in Table 2).

Enforcement models Systrace's user-space policy daemon: every checked
call costs two extra context switches plus a policy lookup, the cost
structure §2.3 contrasts with in-kernel checking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.binfmt import SefBinary
from repro.cpu.vm import VM, ProcessExit
from repro.kernel import EnforcementMode, Kernel
from repro.kernel.audit import AuditEvent
from repro.kernel.process import Process
from repro.kernel.syscalls import SYSCALL_NAMES

#: Hand-edit alias sets (§4.2): "fsread denotes read-related system
#: calls and fswrite denotes write-related calls."
FSREAD = frozenset({"open", "stat", "access", "readlink"})
FSWRITE = frozenset({"open", "mkdir", "rmdir", "unlink", "rename", "chmod"})

_FS_TRIGGERS = frozenset(
    {"open", "stat", "access", "readlink", "mkdir", "rmdir", "unlink",
     "rename", "chmod", "truncate", "utime"}
)

#: One user<->daemon round trip costs two context switches.  ~6,000
#: cycles per switch is the realistic direct+indirect (TLB/cache) cost
#: on the paper's hardware generation; this is what makes user-space
#: policy daemons expensive relative to in-kernel checking (§2.3).
CONTEXT_SWITCH_COST = 6000
POLICY_LOOKUP_COST = 400


#: Syscalls whose first argument is a path (observed for the
#: argument-level policies §2.1 describes Systrace supporting).
_PATH_CALLS = frozenset({
    "open", "stat", "access", "readlink", "unlink", "mkdir", "rmdir",
    "chmod", "chdir", "truncate", "utime", "execve", "chown", "statfs",
    "link", "symlink", "rename", "spawn",
})


class SyscallTracer:
    """Records the kernel's-eye view of each dispatched call."""

    def __init__(self, record_paths: bool = False) -> None:
        self.calls: list[str] = []
        #: (syscall, normalized path) observations
        self.paths: list[tuple] = []
        self.record_paths = record_paths

    def record(self, ctx) -> None:
        # Systrace observes the resolved operation; the __syscall
        # wrapper dispatches the inner call through dispatch() again,
        # so simply skipping the wrapper row reproduces "the
        # indirection is hidden from users".
        if ctx.name == "__syscall":
            return
        self.calls.append(ctx.name)
        if self.record_paths and ctx.name in _PATH_CALLS and ctx.args[0]:
            from repro.policy.normalize import normalize_path

            try:
                raw = ctx.read_path(ctx.args[0])
            except Exception:
                return
            self.paths.append(
                (ctx.name, normalize_path(ctx.kernel.vfs, raw, ctx.process.cwd))
            )


@dataclass
class SystracePolicy:
    """A per-program policy: permitted syscall names, and optionally
    per-syscall path constraints (§2.1: Systrace policies may pin
    argument values or match them against patterns)."""

    program: str
    allowed: frozenset
    #: names admitted only via an alias (never actually observed)
    via_alias: frozenset = frozenset()
    #: syscall -> frozenset of normalized paths observed in training;
    #: empty/missing means the argument is unconstrained.
    path_rules: dict = field(default_factory=dict)
    #: syscall -> administrator-supplied glob patterns (e.g. "/tmp/*").
    path_patterns: dict = field(default_factory=dict)

    def permits(self, syscall: str) -> bool:
        return syscall in self.allowed

    def permits_path(self, syscall: str, normalized: str) -> bool:
        """Argument-level check; unconstrained syscalls accept any path."""
        rules = self.path_rules.get(syscall)
        patterns = self.path_patterns.get(syscall, ())
        if rules is None and not patterns:
            return True
        if rules and normalized in rules:
            return True
        from repro.policy.patterns import Pattern, derive_hint

        for source in patterns:
            if derive_hint(Pattern.parse(source), normalized.encode()) is not None:
                return True
        return False


def train_policy(
    binary: SefBinary,
    training_argvs: Iterable[list],
    program: Optional[str] = None,
    hand_edit: bool = True,
    record_paths: bool = False,
    kernel_factory=None,
) -> SystracePolicy:
    """Derive a policy by running the program on training inputs.

    ``record_paths`` additionally learns per-syscall path constraints;
    ``kernel_factory`` lets callers pre-populate the training VFS."""
    program = program or binary.metadata.get("program", "unknown")
    observed: set[str] = set()
    path_rules: dict = {}
    for argv in training_argvs:
        kernel = kernel_factory() if kernel_factory else Kernel(
            mode=EnforcementMode.PERMISSIVE
        )
        tracer = SyscallTracer(record_paths=record_paths)
        kernel.tracer = tracer
        kernel.run(binary, argv=list(argv))
        observed.update(tracer.calls)
        for syscall, path in tracer.paths:
            path_rules.setdefault(syscall, set()).add(path)

    allowed = set(observed)
    via_alias: set[str] = set()
    if hand_edit and observed & _FS_TRIGGERS:
        for alias in (FSREAD, FSWRITE):
            added = alias - allowed
            via_alias |= added
            allowed |= alias
    return SystracePolicy(
        program=program,
        allowed=frozenset(allowed),
        via_alias=frozenset(via_alias),
        path_rules={name: frozenset(paths) for name, paths in path_rules.items()},
    )


class SystraceMonitor(Kernel):
    """A kernel whose plain-SYS path consults a user-space daemon.

    Protected (ASC) binaries are not expected here; this models the
    *alternative* architecture the paper compares against, so every
    system call pays the daemon round trip."""

    def __init__(self, policy: SystracePolicy, **kwargs):
        super().__init__(**kwargs)
        self.policy = policy
        self.checked_calls = 0
        self.daemon_cycles = 0

    def _handle_sys(self, vm: VM, process: Process) -> int:
        number = vm.regs[0]
        name = SYSCALL_NAMES.get(number, f"syscall#{number}")
        self.checked_calls += 1
        surcharge = 2 * CONTEXT_SWITCH_COST + POLICY_LOOKUP_COST
        self.daemon_cycles += surcharge
        effective = name
        if name == "__syscall":
            effective = SYSCALL_NAMES.get(vm.regs[1], name)
        if not self.policy.permits(effective):
            self._deny(vm, process, effective, "not in policy")
        if effective in _PATH_CALLS and vm.regs[1] and (
            self.policy.path_rules.get(effective)
            or self.policy.path_patterns.get(effective)
        ):
            from repro.policy.normalize import normalize_path

            try:
                raw = vm.memory.read_cstring(vm.regs[1], force=True)
            except Exception:
                raw = b""
            normalized = normalize_path(
                self.vfs, raw.decode("utf-8", "surrogateescape"), process.cwd
            )
            if not self.policy.permits_path(effective, normalized):
                self._deny(
                    vm, process, effective,
                    f"path {normalized!r} not permitted",
                )
        return surcharge + self._dispatch(vm, process, number)

    def _deny(self, vm: VM, process: Process, syscall: str, why: str) -> None:
        self.audit.record(
            AuditEvent(
                kind="killed",
                pid=process.pid,
                program=process.name,
                syscall=syscall,
                reason=f"systrace: {syscall} {why} (possible false alarm)",
                call_site=vm.pc,
            )
        )
        raise ProcessExit(137, killed=True, reason=f"systrace denied {syscall}")
