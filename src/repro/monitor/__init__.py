"""Baseline system call monitors for comparison (§2, §4.2).

- :mod:`repro.monitor.systrace` -- a Systrace-like monitor: policies
  obtained by *training* plus the hand-edit conventions (the
  ``fsread``/``fswrite`` set aliases) used by the published policies
  the paper compares against; enforcement via a simulated user-space
  policy daemon with its context-switch costs.
- :mod:`repro.monitor.stide` -- the Forrest-style sliding-window
  sequence monitor (the lineage §2 credits with originating system
  call monitoring), useful as a second baseline and for mimicry
  experiments.
"""

from repro.monitor.systrace import (
    FSREAD,
    FSWRITE,
    SyscallTracer,
    SystraceMonitor,
    SystracePolicy,
    train_policy,
)
from repro.monitor.stide import StideModel, StideMonitor

__all__ = [
    "FSREAD",
    "FSWRITE",
    "StideModel",
    "StideMonitor",
    "SyscallTracer",
    "SystraceMonitor",
    "SystracePolicy",
    "train_policy",
]
