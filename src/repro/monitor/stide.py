"""stide: the sliding-window sequence monitor (Forrest et al.; §2).

The original system-call-monitoring lineage: learn the set of k-length
call windows seen in normal traces; at detection time, any window not
in the database is an anomaly.  Included as a second baseline and as
the reference point for mimicry-attack discussions (§2.2): an attack
whose call sequence stays within the learned windows goes undetected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class StideModel:
    """A trained window database."""

    window: int = 6
    windows: set = field(default_factory=set)

    def train(self, trace: Sequence[str]) -> None:
        for chunk in self._slide(trace):
            self.windows.add(chunk)

    def train_many(self, traces: Iterable[Sequence[str]]) -> None:
        for trace in traces:
            self.train(trace)

    def _slide(self, trace: Sequence[str]):
        if len(trace) < self.window:
            if trace:
                yield tuple(trace)
            return
        for start in range(len(trace) - self.window + 1):
            yield tuple(trace[start : start + self.window])

    def anomalies(self, trace: Sequence[str]) -> list[int]:
        """Indices (window starts) of unseen windows."""
        return [
            start
            for start, chunk in enumerate(self._slide(trace))
            if chunk not in self.windows
        ]

    def anomaly_rate(self, trace: Sequence[str]) -> float:
        chunks = list(self._slide(trace))
        if not chunks:
            return 0.0
        unseen = sum(1 for chunk in chunks if chunk not in self.windows)
        return unseen / len(chunks)

    def accepts(self, trace: Sequence[str]) -> bool:
        return not self.anomalies(trace)


class StideMonitor:
    """Runtime enforcement wrapper: kill on the first unseen window.

    Deliberately minimal — stide is the §2 lineage baseline, included
    to demonstrate (a) training false alarms and (b) the mimicry blind
    spot that motivates more precise per-site policies."""

    def __init__(self, model: StideModel, kernel):
        self.model = model
        self.kernel = kernel
        self._window: list[str] = []
        kernel.tracer = self

    def record(self, ctx) -> None:
        if ctx.name == "__syscall":
            return
        self._window.append(ctx.name)
        if len(self._window) > self.model.window:
            self._window.pop(0)
        if len(self._window) == self.model.window and (
            tuple(self._window) not in self.model.windows
        ):
            from repro.cpu.vm import ProcessExit
            from repro.kernel.audit import AuditEvent

            self.kernel.audit.record(
                AuditEvent(
                    kind="killed",
                    pid=ctx.process.pid,
                    program=ctx.process.name,
                    syscall=ctx.name,
                    reason=f"stide: unseen window {tuple(self._window)}",
                )
            )
            raise ProcessExit(137, killed=True, reason="stide anomaly")

    def reset(self) -> None:
        self._window.clear()
