"""CI perf-regression gate for the host wall-clock trajectory.

Compares a freshly measured ``BENCH_host_wallclock.json`` against the
last *committed* baseline and fails when the threaded engine's
instructions/second drops below ``threshold`` (default 0.7) times the
baseline on any workload both files measured.  The CI job snapshots the
committed file before the bench overwrites it::

    cp BENCH_host_wallclock.json /tmp/wallclock-baseline.json
    REPRO_BENCH_SCALE=0.2 ... pytest benchmarks/bench_host_wallclock.py ...
    python benchmarks/check_wallclock_regression.py \
        --baseline /tmp/wallclock-baseline.json \
        --current BENCH_host_wallclock.json

Absolute instr/sec varies across host machines, so 0.7x is a coarse
tripwire for catastrophic regressions (an accidental de-optimisation of
the translation cache, a recorder guard left unconditioned), not a
precision benchmark; the bench's own speedup gate covers the
engine-vs-engine ratio, which is host-independent.
"""

from __future__ import annotations

import argparse
import json
import sys

DEFAULT_THRESHOLD = 0.7


def compare(baseline: dict, current: dict, threshold: float) -> list[str]:
    """Returns a list of human-readable regression descriptions."""
    failures = []
    base_workloads = baseline.get("workloads", {})
    curr_workloads = current.get("workloads", {})
    shared = sorted(set(base_workloads) & set(curr_workloads))
    if not shared:
        return ["no workloads in common between baseline and current run"]
    for name in shared:
        base_ips = base_workloads[name]["threaded"]["instructions_per_second"]
        curr_ips = curr_workloads[name]["threaded"]["instructions_per_second"]
        ratio = curr_ips / base_ips if base_ips else float("inf")
        status = "ok" if ratio >= threshold else "REGRESSION"
        print(
            f"{name:12s} baseline={base_ips:>12,} instr/s  "
            f"current={curr_ips:>12,} instr/s  ratio={ratio:.2f}x  [{status}]"
        )
        if ratio < threshold:
            failures.append(
                f"{name}: threaded instr/sec fell to {ratio:.2f}x of the "
                f"committed baseline (gate: {threshold}x)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_host_wallclock.json snapshot")
    parser.add_argument("--current", required=True,
                        help="freshly measured BENCH_host_wallclock.json")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="minimum current/baseline instr-per-sec ratio "
                             f"(default {DEFAULT_THRESHOLD})")
    args = parser.parse_args(argv)

    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    with open(args.current, encoding="utf-8") as handle:
        current = json.load(handle)

    failures = compare(baseline, current, args.threshold)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
