"""CI perf-regression gate for the host wall-clock trajectory.

Compares a freshly measured ``BENCH_host_wallclock.json`` against the
last *committed* baseline and fails when an engine column's
instructions/second drops below ``threshold`` (default 0.7) times the
baseline on any workload both files measured.  Both the ``threaded``
(chaining off) and ``threaded_chained`` columns are gated; the chained
comparison is skipped per-workload when the committed baseline
predates chaining.  The CI job snapshots the committed file before the
bench overwrites it::

    cp BENCH_host_wallclock.json /tmp/wallclock-baseline.json
    REPRO_BENCH_SCALE=0.2 ... pytest benchmarks/bench_host_wallclock.py ...
    python benchmarks/check_wallclock_regression.py \
        --baseline /tmp/wallclock-baseline.json \
        --current BENCH_host_wallclock.json

Every failure message names the workload, the engine column, and both
absolute numbers, so a tripped gate in CI identifies the offending
measurement without re-running anything.

Two host-invariant ratio gates ride along: scheduler parity (a single
process under the scheduler must run at ~the bare engine's speed) and
the verify-stage share of traced time (the per-syscall verification
surcharge the verifier JIT keeps low; see ``check_verify_share``).

Absolute instr/sec varies across host machines, so 0.7x is a coarse
tripwire for catastrophic regressions (an accidental de-optimisation of
the translation cache, a recorder guard left unconditioned, chaining
silently disabled), not a precision benchmark; the bench's own speedup
gates cover the engine-vs-engine ratios, which are host-independent.
"""

from __future__ import annotations

import argparse
import json
import sys

DEFAULT_THRESHOLD = 0.7

#: Verify-surcharge gate (PR 7).  ``verify_share`` is the fraction of
#: traced host time spent in the §3.4 verification stages (a
#: host-invariant ratio, like sched parity).  Against a baseline that
#: predates the field — the PR 6 era — the current measurement must
#: beat the hard-coded PR 6 share by ``VERIFY_IMPROVEMENT_GATE`` on
#: the gate workload; against a post-JIT baseline the share must not
#: creep back up by more than ``VERIFY_CREEP_ALLOWANCE``.
VERIFY_GATE_WORKLOAD = "gzip-spec"
VERIFY_SHARE_PR6_BASELINE = 0.4033
VERIFY_IMPROVEMENT_GATE = 1.5
#: Scaled-down CI runs amortize thunk compilation over fewer syscalls,
#: so their share runs a little above the committed full-scale number;
#: 1.5x absorbs that while still tripping on the catastrophic case (a
#: disabled/broken JIT puts the share back at ~0.40, over any ceiling
#: derived from a post-JIT baseline).
VERIFY_CREEP_ALLOWANCE = 1.5

#: Engine columns gated against the committed baseline, in report
#: order.  ``threaded_chained`` is absent from pre-chaining baselines
#: and is then skipped (with a note) rather than failed.
GATED_COLUMNS = ("threaded", "threaded_chained")

#: Minimum (scheduled single-process instr/sec) / (chained engine
#: instr/sec), both from the CURRENT measurement: the scheduler must
#: not slow the single-process path down.
DEFAULT_SCHED_PARITY = 0.95


def compare(baseline: dict, current: dict, threshold: float) -> list[str]:
    """Returns a list of human-readable regression descriptions, each
    naming the workload and engine column that tripped the gate."""
    failures = []
    base_workloads = baseline.get("workloads", {})
    curr_workloads = current.get("workloads", {})
    shared = sorted(set(base_workloads) & set(curr_workloads))
    if not shared:
        return ["no workloads in common between baseline and current run"]
    for name in shared:
        for column in GATED_COLUMNS:
            base_col = base_workloads[name].get(column)
            curr_col = curr_workloads[name].get(column)
            if base_col is None or curr_col is None:
                print(f"{name:12s} {column}: not in "
                      f"{'baseline' if base_col is None else 'current'} "
                      "[skipped]")
                continue
            base_ips = base_col["instructions_per_second"]
            curr_ips = curr_col["instructions_per_second"]
            ratio = curr_ips / base_ips if base_ips else float("inf")
            status = "ok" if ratio >= threshold else "REGRESSION"
            print(
                f"{name:12s} {column:17s} baseline={base_ips:>12,} instr/s  "
                f"current={curr_ips:>12,} instr/s  ratio={ratio:.2f}x  "
                f"[{status}]"
            )
            if ratio < threshold:
                failures.append(
                    f"workload '{name}', column '{column}': instr/sec fell "
                    f"to {ratio:.2f}x of the committed baseline "
                    f"({curr_ips:,} vs {base_ips:,}; gate: {threshold}x)"
                )
    return failures


def check_sched_parity(current: dict, threshold: float) -> list[str]:
    """Within the CURRENT measurement only (host-invariant ratio):
    running single-process under the scheduler must cost ~nothing
    relative to the chained engine it runs on.  Skipped per-workload
    when the JSON predates the threaded_sched measurement; falls back
    to the plain threaded column for pre-chaining JSON files."""
    failures = []
    for name, entry in sorted(current.get("workloads", {}).items()):
        sched = entry.get("threaded_sched")
        if not sched:
            print(f"{name:12s} sched parity: not measured [skipped]")
            continue
        bare = entry.get("threaded_chained") or entry["threaded"]
        bare_ips = bare["instructions_per_second"]
        sched_ips = sched["instructions_per_second"]
        ratio = sched_ips / bare_ips if bare_ips else float("inf")
        status = "ok" if ratio >= threshold else "REGRESSION"
        print(
            f"{name:12s} bare={bare_ips:>12,} instr/s  "
            f"sched={sched_ips:>12,} instr/s  parity={ratio:.2f}x  [{status}]"
        )
        if ratio < threshold:
            failures.append(
                f"workload '{name}': scheduler overhead pushed "
                f"single-process throughput to {ratio:.2f}x of the bare "
                f"engine ({sched_ips:,} vs {bare_ips:,}; "
                f"gate: {threshold}x)"
            )
    return failures


def check_verify_share(baseline: dict, current: dict) -> list[str]:
    """The verify-surcharge gate on ``VERIFY_GATE_WORKLOAD``.

    Two regimes, detected by whether the baseline already records
    ``verify_share``:

    - pre-JIT baseline (PR 6 and earlier): the verifier specialization
      engine must prove its worth — current share at most the PR 6
      reference divided by ``VERIFY_IMPROVEMENT_GATE``.
    - post-JIT baseline: anti-regression — current share at most
      ``VERIFY_CREEP_ALLOWANCE`` times the baseline's share.
    """
    failures = []
    entry = current.get("workloads", {}).get(VERIFY_GATE_WORKLOAD, {})
    share = entry.get("verify_share")
    if share is None:
        obs = entry.get("observability", {})
        share = obs.get("verify_share")
    if share is None:
        print(f"{VERIFY_GATE_WORKLOAD:12s} verify share: not measured "
              "[skipped]")
        return failures
    base_entry = baseline.get("workloads", {}).get(VERIFY_GATE_WORKLOAD, {})
    base_share = base_entry.get("verify_share")
    if base_share is None:
        base_share = base_entry.get("observability", {}).get("verify_share")
    if base_share is None:
        # Pre-JIT baseline: demand the improvement, not mere parity.
        ceiling = VERIFY_SHARE_PR6_BASELINE / VERIFY_IMPROVEMENT_GATE
        origin = (f"PR 6 reference {VERIFY_SHARE_PR6_BASELINE} / "
                  f"{VERIFY_IMPROVEMENT_GATE}")
    else:
        ceiling = base_share * VERIFY_CREEP_ALLOWANCE
        origin = f"baseline {base_share} x {VERIFY_CREEP_ALLOWANCE}"
    status = "ok" if share <= ceiling else "REGRESSION"
    print(
        f"{VERIFY_GATE_WORKLOAD:12s} verify share={share:.4f}  "
        f"ceiling={ceiling:.4f} ({origin})  [{status}]"
    )
    if share > ceiling:
        failures.append(
            f"workload '{VERIFY_GATE_WORKLOAD}': verify-stage share of "
            f"traced time is {share:.4f}, above the gate ceiling "
            f"{ceiling:.4f} ({origin})"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_host_wallclock.json snapshot")
    parser.add_argument("--current", required=True,
                        help="freshly measured BENCH_host_wallclock.json")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="minimum current/baseline instr-per-sec ratio "
                             f"(default {DEFAULT_THRESHOLD})")
    parser.add_argument("--sched-parity-threshold", type=float,
                        default=DEFAULT_SCHED_PARITY,
                        help="minimum scheduled/bare single-process ratio "
                             "within the current measurement "
                             f"(default {DEFAULT_SCHED_PARITY}; 0 disables)")
    parser.add_argument("--no-verify-share-gate", action="store_true",
                        help="skip the verify-stage share gate on "
                             f"{VERIFY_GATE_WORKLOAD}")
    args = parser.parse_args(argv)

    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    with open(args.current, encoding="utf-8") as handle:
        current = json.load(handle)

    failures = compare(baseline, current, args.threshold)
    if args.sched_parity_threshold > 0:
        failures += check_sched_parity(current, args.sched_parity_threshold)
    if not args.no_verify_share_gate:
        failures += check_verify_share(baseline, current)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
