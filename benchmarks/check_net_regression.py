"""CI perf-regression gate for the netserver throughput trajectory.

The networking sibling of ``check_wallclock_regression.py``: compares
a freshly measured ``BENCH_net.json`` against the last *committed*
baseline and fails when an engine column's requests/second (auth on)
drops below ``threshold`` (default 0.7) times the baseline.  The CI
job snapshots the committed file before the bench overwrites it::

    cp BENCH_net.json /tmp/net-baseline.json
    REPRO_BENCH_SCALE=0.2 ... pytest benchmarks/bench_net.py ...
    python benchmarks/check_net_regression.py \
        --baseline /tmp/net-baseline.json --current BENCH_net.json

One host-invariant ratio gate rides along, from the CURRENT
measurement only: the chained threaded engine must complete at least
``--chained-gate`` (default 3.0) times the interpreter's req/s on the
auth-on netserver.  The ratio holds at smoke scale too — the workload
is compute-bound per request — so CI enforces it on every push, not
just full-scale runs.

Like the wall-clock gate, 0.7x is a coarse tripwire for catastrophic
regressions (socket paths accidentally serialized, blocking turned
into spinning, chaining broken across trap boundaries), not a
precision benchmark.
"""

from __future__ import annotations

import argparse
import json
import sys

DEFAULT_THRESHOLD = 0.7
DEFAULT_CHAINED_GATE = 3.0

#: Engine columns gated against the committed baseline (auth on — the
#: protected server is the configuration whose speed the repo tracks).
GATED_COLUMNS = ("interp", "threaded_chained")


def compare(baseline: dict, current: dict, threshold: float) -> list[str]:
    """Auth-on req/s, current vs committed baseline, per engine."""
    failures = []
    base_entry = baseline.get("netserver", {}).get("auth_on", {})
    curr_entry = current.get("netserver", {}).get("auth_on", {})
    for column in GATED_COLUMNS:
        base_col = base_entry.get(column)
        curr_col = curr_entry.get(column)
        if base_col is None or curr_col is None:
            print(f"netserver {column}: not in "
                  f"{'baseline' if base_col is None else 'current'} "
                  "[skipped]")
            continue
        base_rps = base_col["requests_per_second"]
        curr_rps = curr_col["requests_per_second"]
        ratio = curr_rps / base_rps if base_rps else float("inf")
        status = "ok" if ratio >= threshold else "REGRESSION"
        print(
            f"netserver {column:17s} baseline={base_rps:>10,.1f} req/s  "
            f"current={curr_rps:>10,.1f} req/s  ratio={ratio:.2f}x  "
            f"[{status}]"
        )
        if ratio < threshold:
            failures.append(
                f"netserver column '{column}': auth-on req/s fell to "
                f"{ratio:.2f}x of the committed baseline "
                f"({curr_rps:,.1f} vs {base_rps:,.1f}; gate: {threshold}x)"
            )
    return failures


def check_chained_gate(current: dict, gate: float) -> list[str]:
    """Within the CURRENT measurement: chained vs interp req/s, auth on."""
    failures = []
    entry = current.get("netserver", {}).get("auth_on", {})
    interp = entry.get("interp")
    chained = entry.get("threaded_chained")
    if not interp or not chained:
        print("netserver chained gate: not measured [skipped]")
        return failures
    interp_rps = interp["requests_per_second"]
    chained_rps = chained["requests_per_second"]
    ratio = chained_rps / interp_rps if interp_rps else float("inf")
    status = "ok" if ratio >= gate else "REGRESSION"
    print(
        f"netserver chained/interp  interp={interp_rps:>10,.1f} req/s  "
        f"chained={chained_rps:>10,.1f} req/s  ratio={ratio:.2f}x  "
        f"[{status}]"
    )
    if ratio < gate:
        failures.append(
            f"netserver: chained engine completes only {ratio:.2f}x the "
            f"interpreter's auth-on req/s ({chained_rps:,.1f} vs "
            f"{interp_rps:,.1f}; gate: {gate}x)"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_net.json snapshot")
    parser.add_argument("--current", required=True,
                        help="freshly measured BENCH_net.json")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="minimum current/baseline req-per-sec ratio "
                             f"(default {DEFAULT_THRESHOLD})")
    parser.add_argument("--chained-gate", type=float,
                        default=DEFAULT_CHAINED_GATE,
                        help="minimum chained/interp req-per-sec ratio "
                             "within the current measurement "
                             f"(default {DEFAULT_CHAINED_GATE}; 0 disables)")
    args = parser.parse_args(argv)

    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    with open(args.current, encoding="utf-8") as handle:
        current = json.load(handle)

    failures = compare(baseline, current, args.threshold)
    if args.chained_gate > 0:
        failures += check_chained_gate(current, args.chained_gate)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
