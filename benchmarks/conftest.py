"""Shared benchmark utilities.

Benches print paper-vs-measured tables through ``report()`` (bypassing
pytest capture so the tables always appear) and also archive them under
``benchmarks/results/``.
"""

import os
import pathlib

import pytest

from repro.crypto import Key

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: One deterministic machine key for the whole bench session; fast-hmac
#: keeps wall-clock sane while charging identical simulated cycles.
BENCH_KEY = Key.from_passphrase("benchmark-machine", provider="fast-hmac")


@pytest.fixture
def report(capsys):
    """Print a report table live and archive it."""

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)

    return _report


def bench_scale() -> float:
    """Workload scale knob: REPRO_BENCH_SCALE=0.1 shrinks loop counts
    for smoke runs; 1.0 (default) is the paper-faithful size."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
