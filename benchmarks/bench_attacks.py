"""§4.1 attack experiments + §5.5 Frankenstein, as a regression bench.

The paper's three attack experiments (shellcode, mimicry,
non-control-data) plus the replay and Frankenstein scenarios; each must
land on its documented outcome, and the bench reports the kernel's
fail-stop reason for every one.
"""

import pytest

from repro.analysis import format_table
from repro.attacks import run_all_attacks
from benchmarks.conftest import BENCH_KEY

#: Expected outcome per scenario (True = blocked).
EXPECTED = {
    "shellcode": True,
    "mimicry/call-graph": True,
    "mimicry/call-site": True,
    "non-control-data": True,
    "frankenstein/defended": True,
    "frankenstein/undefended": False,  # the §5.5 vulnerability, by design
    "replay": True,
}


@pytest.mark.benchmark(group="attacks")
def test_attack_battery(benchmark, report):
    results = benchmark.pedantic(
        lambda: run_all_attacks(BENCH_KEY), rounds=1, iterations=1
    )

    rows = []
    for result in results:
        expected = "BLOCKED" if EXPECTED[result.name] else "succeeds"
        actual = "BLOCKED" if result.blocked else "succeeds"
        rows.append([
            result.name, expected, actual,
            (result.kill_reason or "-")[:60],
        ])
    report(
        "attack_battery",
        format_table(
            ["attack", "expected", "measured", "kernel reason"],
            rows,
            title="§4.1 / §5.5 attack experiments",
        ),
    )

    for result in results:
        assert result.blocked == EXPECTED[result.name], result.name
