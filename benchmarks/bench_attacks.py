"""§4.1 attack experiments + §5.5 Frankenstein, as a regression bench.

The paper's three attack experiments (shellcode, mimicry,
non-control-data) plus the replay and Frankenstein scenarios; each must
land on its documented outcome, and the bench reports the kernel's
fail-stop reason for every one.
"""

import pytest

from repro.analysis import format_table
from repro.attacks import run_all_attacks
from benchmarks.conftest import BENCH_KEY

#: Expected outcome per scenario (True = blocked).
EXPECTED = {
    "shellcode": True,
    "mimicry/call-graph": True,
    "mimicry/call-site": True,
    "non-control-data": True,
    "frankenstein/defended": True,
    "frankenstein/undefended": False,  # the §5.5 vulnerability, by design
    "replay": True,
}


@pytest.mark.benchmark(group="attacks")
def test_attack_battery(benchmark, report):
    # The battery runs under both execution engines; the verdicts and
    # fail-stop reasons are a security property and must not depend on
    # how the CPU is emulated.
    def run_both():
        return {
            engine: run_all_attacks(BENCH_KEY, engine=engine)
            for engine in ("interp", "threaded")
        }

    by_engine = benchmark.pedantic(run_both, rounds=1, iterations=1)
    results = by_engine["threaded"]

    rows = []
    for result in results:
        expected = "BLOCKED" if EXPECTED[result.name] else "succeeds"
        actual = "BLOCKED" if result.blocked else "succeeds"
        rows.append([
            result.name, expected, actual,
            (result.kill_reason or "-")[:60],
        ])
    report(
        "attack_battery",
        format_table(
            ["attack", "expected", "measured", "kernel reason"],
            rows,
            title="§4.1 / §5.5 attack experiments "
                  "(identical under both execution engines)",
        ),
    )

    for result in results:
        assert result.blocked == EXPECTED[result.name], result.name
    assert [
        (r.name, r.blocked, r.kill_reason) for r in by_engine["interp"]
    ] == [
        (r.name, r.blocked, r.kill_reason) for r in by_engine["threaded"]
    ]
