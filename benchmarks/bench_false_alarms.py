"""False alarms: the §4.2 core claim, quantified.

"Our approach uses a conservative static analysis to generate system
call policies, which means that they include all needed calls and thus
avoid false alarms."  Training-based monitors, by contrast, terminate
legitimate runs that exercise paths training never saw — "a significant
administrative headache and barrier to use."

For each profile program we train the baselines on common-path runs and
then execute the *legitimate full-mode* run (every rare path taken)
under three monitors:

- ASC (installed binary + checking kernel): must never false-alarm;
- the Systrace baseline: false-alarms on the first untrained call;
- stide: false-alarms on the first unseen window.
"""

import pytest

from repro.analysis import format_table
from repro.installer import install
from repro.kernel import Kernel
from repro.monitor import StideModel, SyscallTracer, SystraceMonitor, train_policy
from repro.monitor.stide import StideMonitor
from repro.workloads import build_profile_program
from benchmarks.conftest import BENCH_KEY

PROGRAMS = ("bison", "calc", "screen")


def _asc_outcome(name: str) -> tuple:
    binary = build_profile_program(name, "linux")
    installed = install(binary, BENCH_KEY)
    kernel = Kernel(key=BENCH_KEY)
    result = kernel.run(installed.binary, argv=[name, "full"])
    return (not result.killed, result.kill_reason)


def _systrace_outcome(name: str) -> tuple:
    binary = build_profile_program(name, "openbsd")
    policy = train_policy(binary, [[name], [name, "train"]])
    monitor = SystraceMonitor(policy)
    result = monitor.run(binary, argv=[name, "full"])
    reason = monitor.audit.kills()[0].reason if monitor.audit.kills() else ""
    return (not result.killed, reason)


def _stide_outcome(name: str) -> tuple:
    binary = build_profile_program(name, "linux")
    model = StideModel(window=6)
    for argv in ([name], [name, "train"]):
        kernel = Kernel()
        tracer = SyscallTracer()
        kernel.tracer = tracer
        kernel.run(binary, argv=argv)
        model.train(tracer.calls)
    kernel = Kernel()
    StideMonitor(model, kernel)
    result = kernel.run(binary, argv=[name, "full"])
    return (not result.killed, result.kill_reason)


@pytest.mark.benchmark(group="false-alarms")
def test_false_alarm_rates(benchmark, report):
    def run_suite():
        outcome = {}
        for name in PROGRAMS:
            outcome[name] = {
                "asc": _asc_outcome(name),
                "systrace": _systrace_outcome(name),
                "stide": _stide_outcome(name),
            }
        return outcome

    outcome = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    rows = []
    for name in PROGRAMS:
        row = [name]
        for monitor in ("asc", "systrace", "stide"):
            clean, reason = outcome[name][monitor]
            row.append("clean" if clean else "FALSE ALARM")
        rows.append(row)
    detail_lines = []
    for name in PROGRAMS:
        for monitor in ("systrace", "stide"):
            clean, reason = outcome[name][monitor]
            if not clean and reason:
                detail_lines.append(f"  {name}/{monitor}: {reason[:70]}")
    report(
        "false_alarms",
        format_table(
            ["program (legitimate full-path run)", "ASC", "Systrace", "stide"],
            rows,
            title="False alarms on legitimate rare-path executions (§4.2)",
        )
        + ("\n\nfirst alarm per monitor:\n" + "\n".join(detail_lines)
           if detail_lines else ""),
    )

    for name in PROGRAMS:
        asc_clean, reason = outcome[name]["asc"]
        assert asc_clean, f"ASC false alarm on {name}: {reason}"
        assert not outcome[name]["systrace"][0], name
        assert not outcome[name]["stide"][0], name
