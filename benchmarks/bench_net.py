"""Network throughput: the loopback echo server, auth on vs auth off,
interpreter vs chained threaded engine.

The macro benchmarks measure single-process pipelines; this one
measures the networking subsystem end to end — one listening server
plus forked clients exchanging fixed-size request/response records
over the loopback socket stack, under the preemptive scheduler, with
every socket call site authenticated.  The figure of merit is host
**requests/second**: how many request→echo→check round trips the whole
machine completes per second of wall-clock time.

Four configurations, two axes:

- **auth on** — the installed (signed) netserver; every ``socket``,
  ``bind``, ``connect``, ``send``, ``recv`` … trap pays verification.
- **auth off** — the same program uninstalled, run by the PERMISSIVE
  kernel: no policy records, no MACs, the paper's unprotected baseline.
- **interp** / **threaded_chained** — the reference interpreter and
  the default engine (translation cache + direct chaining).

The engines' bit-identity contract is re-checked on the exact runs
being timed: per-task exit statuses, instruction counts, and the full
scheduler interleaving must agree between interp and chained for the
same auth setting.

Results are archived twice, like the wall-clock bench: a table under
``benchmarks/results/`` and a machine-readable ``BENCH_net.json`` at
the repo root (gated in CI by ``check_net_regression.py``).

Knobs: ``REPRO_BENCH_SCALE`` shrinks requests-per-client for smoke
runs; the chained-vs-interp ratio gate is enforced at full scale only
(smoke runs just require chained to not be *slower*), matching
bench_host_wallclock.py.
"""

import gc
import json
import os
import pathlib
import time

import pytest

from repro.analysis import format_table
from repro.installer import install
from repro.kernel import Kernel
from repro.workloads.netserver import build_netserver
from benchmarks.conftest import BENCH_KEY, bench_scale

JSON_PATH = pathlib.Path(__file__).parent.parent / "BENCH_net.json"

#: Netserver shape at full scale.  64 requests/client keeps a client's
#: completed count within its 8-bit exit status; the spin loop per
#: served request makes the workload compute-heavy enough that engine
#: speed (not trap overhead) dominates, like a real server doing work
#: per request.
CLIENTS = 4
FULL_REQUESTS = 64
SPIN = 600
TIMESLICE = 1500

#: Acceptance gate (full scale, auth on): the chained threaded engine
#: must complete at least this multiple of the interpreter's req/s.
CHAINED_VS_INTERP_GATE = 3.0

#: Timed repetitions per configuration, fastest kept (min-of-N), same
#: rationale as bench_host_wallclock.py.
TIMING_REPEATS = int(os.environ.get("REPRO_NET_REPEATS", "3"))

ENGINE_COLUMNS = (
    ("interp", dict(engine="interp")),
    ("threaded_chained", dict(engine="threaded", chain=True)),
)


def _best_of(run_once) -> dict:
    best = None
    for _ in range(max(1, TIMING_REPEATS)):
        gc.collect()
        sample = run_once()
        if best is not None:
            for field in ("instructions", "interleaving", "statuses"):
                assert sample[field] == best[field], (field,)
        if best is None or sample["host_seconds"] < best["host_seconds"]:
            best = sample
    return best


def _time_netserver(binary, requests: int, engine_kwargs: dict) -> dict:
    total_requests = CLIENTS * requests

    def run_once() -> dict:
        kernel = Kernel(key=BENCH_KEY, **engine_kwargs)
        start = time.perf_counter()
        multi = kernel.run_many([binary], timeslice=TIMESLICE)
        host_seconds = time.perf_counter() - start
        tasks = [multi.scheduler.tasks[pid] for pid in sorted(multi.scheduler.tasks)]
        statuses = tuple(task.exit_status for task in tasks)
        # Server exits 0 only when every record was echoed and every
        # client's count reaped; clients exit their completed count.
        assert statuses == (0,) + (requests,) * CLIENTS, statuses
        assert not any(task.killed for task in tasks)
        return {
            "host_seconds": host_seconds,
            "statuses": statuses,
            "instructions": sum(t.vm.instructions_executed for t in tasks),
            "interleaving": tuple(multi.scheduler.interleaving),
            "rps": total_requests / host_seconds,
        }

    return _best_of(run_once)


@pytest.mark.benchmark(group="net")
def test_net_throughput(benchmark, report):
    scale = bench_scale()
    requests = max(2, int(FULL_REQUESTS * scale))
    total_requests = CLIENTS * requests

    source = build_netserver(clients=CLIENTS, requests=requests, spin=SPIN)
    auth_on = install(source, BENCH_KEY).binary
    auth_off = source  # uninstalled: the unprotected baseline

    def run_suite():
        measured = {"auth_on": {}, "auth_off": {}}
        for auth, binary in (("auth_on", auth_on), ("auth_off", auth_off)):
            for column, kwargs in ENGINE_COLUMNS:
                measured[auth][column] = _time_netserver(
                    binary, requests, kwargs
                )
        return measured

    measured = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    # Engine bit-identity on the timed runs: same per-task results and
    # the same scheduler interleaving, for each auth setting.
    for auth in ("auth_on", "auth_off"):
        interp = measured[auth]["interp"]
        chained = measured[auth]["threaded_chained"]
        for field in ("statuses", "instructions", "interleaving"):
            assert interp[field] == chained[field], (auth, field)

    chained_speedup = (
        measured["auth_on"]["threaded_chained"]["rps"]
        / measured["auth_on"]["interp"]["rps"]
    )
    payload = {
        "benchmark": "net",
        "scale": scale,
        "clients": CLIENTS,
        "requests_per_client": requests,
        "total_requests": total_requests,
        "spin": SPIN,
        "timeslice": TIMESLICE,
        "chained_vs_interp_gate": CHAINED_VS_INTERP_GATE,
        "netserver": {},
    }
    rows = []
    for auth in ("auth_on", "auth_off"):
        entry = {}
        for column, _ in ENGINE_COLUMNS:
            sample = measured[auth][column]
            entry[column] = {
                "host_seconds": round(sample["host_seconds"], 4),
                "requests_per_second": round(sample["rps"], 1),
                "guest_instructions": sample["instructions"],
            }
        entry["chained_speedup"] = round(
            entry["threaded_chained"]["requests_per_second"]
            / entry["interp"]["requests_per_second"], 2,
        )
        payload["netserver"][auth] = entry
        rows.append([
            auth.replace("_", " "),
            f"{entry['interp']['requests_per_second']:,.0f}",
            f"{entry['threaded_chained']['requests_per_second']:,.0f}",
            f"{entry['chained_speedup']:.2f}x",
        ])
    # Authentication overhead, per engine: unprotected / protected
    # req/s (the networking analogue of the paper's macro slowdowns).
    for column, _ in ENGINE_COLUMNS:
        payload["netserver"]["auth_overhead_" + column] = round(
            measured["auth_off"][column]["rps"]
            / measured["auth_on"][column]["rps"], 3,
        )

    # Gates: chained must never lose to the interpreter; the 3x ratio
    # is enforced at full scale (tiny runs are startup-dominated).
    assert chained_speedup >= 1.0, chained_speedup
    if scale >= 1.0:
        assert chained_speedup >= CHAINED_VS_INTERP_GATE, chained_speedup

    table = format_table(
        ["Config", "interp req/s", "chained req/s", "Chain/interp"],
        rows,
        title="Loopback netserver throughput: "
              f"{CLIENTS} clients x {requests} requests "
              f"(scale={scale}; full-scale gate: chained >= "
              f"{CHAINED_VS_INTERP_GATE}x interp req/s, auth on; "
              "auth overhead = auth-off / auth-on req/s: "
              f"interp {payload['netserver']['auth_overhead_interp']}x, "
              "chained "
              f"{payload['netserver']['auth_overhead_threaded_chained']}x)",
    )
    report("net_throughput", table)

    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
