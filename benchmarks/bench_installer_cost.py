"""Installation (transformation) cost.

§4.3: "The cost of transforming the programs including PLTO
optimizations ranged from 3.49 seconds for vpr to 86.17 seconds for
gcc."  The comparable claim is *shape*: installation cost is a one-time
offline cost that grows with program size (call sites to analyze and
rewrite, strings to authenticate), and is irrelevant to runtime.

We measure host wall-clock for the full install pipeline over the
profile corpus (ordered by size) and assert monotonicity in sites.
"""

import time

import pytest

from repro.analysis import format_table
from repro.installer import install
from repro.workloads import build_profile_program
from repro.workloads.profiles import PROFILE_PROGRAMS
from benchmarks.conftest import BENCH_KEY

#: Paper's published endpoints for context.
PAPER_RANGE = (3.49, 86.17)


@pytest.mark.benchmark(group="installer")
def test_installation_cost(benchmark, report):
    programs = ["bison", "calc", "tar", "screen"]  # ascending site count

    def run_suite():
        measured = {}
        for name in programs:
            binary = build_profile_program(name, "linux")
            started = time.perf_counter()
            installed = install(binary, BENCH_KEY)
            elapsed = time.perf_counter() - started
            measured[name] = (elapsed, installed.sites_rewritten)
        return measured

    measured = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    rows = [
        [
            name,
            PROFILE_PROGRAMS[name].target.sites,
            measured[name][1],
            f"{measured[name][0]:.2f}s",
        ]
        for name in programs
    ]
    rows.append([
        "(paper range: vpr 3.49s ... gcc 86.17s on 2003-era hardware)",
        "-", "-", "-",
    ])
    report(
        "installer_cost",
        format_table(
            ["program", "sites (paper)", "sites rewritten", "install time (host)"],
            rows,
            title="Installation cost: one-time offline transformation",
        ),
    )

    # Shape: every site got rewritten, and cost grows with program size.
    for name in programs:
        assert measured[name][1] == PROFILE_PROGRAMS[name].target.sites
    times = [measured[name][0] for name in programs]
    assert times[-1] > times[0], "screen should cost more than bison"
