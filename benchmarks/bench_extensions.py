"""Ablations for the design choices DESIGN.md calls out, plus the §5
extensions.

1. Control-flow policies on/off: the per-call cost of the ordering
   check (Table 4 measured without; Table 6 ran with).
2. MAC-cost sensitivity: how the surcharge scales if the kernel's AES
   were slower (the paper's cost is dominated by AES-CBC-OMAC).
3. Proof-hint pattern matching (§5.1): kernel work with a hint is one
   linear scan; without it, the kernel would have to search.
4. In-kernel ASC checking vs a user-space policy daemon (§2.3): the
   architectural comparison motivating the whole design.
5. Capability tracking (§5.3): incremental cost of fd checks.
"""

import pytest

from repro.analysis import format_table
from repro.asm import assemble
from repro.installer import InstallerOptions, install
from repro.kernel import CostModel, Kernel
from repro.monitor import SystraceMonitor, train_policy
from repro.policy import Pattern, derive_hint, match_with_hint
from repro.workloads.runtime import runtime_source
from benchmarks.conftest import BENCH_KEY, bench_scale

LOOP_PROGRAM = """
.section .text
.global _start
_start:
    li r13, {iterations}
loop:
    call sys_getpid
    subi r13, r13, 1
    cmpi r13, 0
    bgt loop
    li r1, 0
    call sys_exit
""" + runtime_source("linux", ("getpid", "exit"))


def _cycles_per_call(binary, iterations, kernel=None):
    kernel = kernel or Kernel(key=BENCH_KEY)
    result = kernel.run(binary, max_instructions=200_000_000)
    assert result.ok, result.kill_reason
    return result.cycles / iterations


def _build(iterations):
    return assemble(
        LOOP_PROGRAM.format(iterations=iterations),
        metadata={"program": "ablate"},
    )


@pytest.mark.benchmark(group="ablations")
def test_ablations(benchmark, report):
    iterations = max(200, int(5_000 * bench_scale()))

    def run_suite():
        data = {}
        raw = _build(iterations)
        data["plain"] = _cycles_per_call(raw, iterations)
        no_cf = install(raw, BENCH_KEY, InstallerOptions(control_flow=False))
        data["auth-nocf"] = _cycles_per_call(no_cf.binary, iterations)
        with_cf = install(raw, BENCH_KEY)
        data["auth-cf"] = _cycles_per_call(with_cf.binary, iterations)
        cap = install(
            raw, BENCH_KEY, InstallerOptions(capability_tracking=True)
        )
        data["auth-cap"] = _cycles_per_call(
            cap.binary, iterations, Kernel(key=BENCH_KEY, capability_tracking=True)
        )
        frank = install(raw, BENCH_KEY, InstallerOptions(program_id=7))
        data["auth-progid"] = _cycles_per_call(frank.binary, iterations)

        # Slower-MAC variant (5x the per-block cost).
        slow_costs = CostModel(mac_block_cost=CostModel().mac_block_cost * 5)
        slow_kernel = Kernel(key=BENCH_KEY, costs=slow_costs)
        data["auth-cf-slowmac"] = _cycles_per_call(
            with_cf.binary, iterations, slow_kernel
        )

        # User-space daemon baseline (§2.3).
        policy = train_policy(raw, [["ablate"]])
        monitor = SystraceMonitor(policy, key=BENCH_KEY)
        result = monitor.run(raw, max_instructions=200_000_000)
        assert result.ok
        data["systrace-daemon"] = result.cycles / iterations
        return data

    data = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    rows = [
        ["unmonitored", round(data["plain"]), "-"],
        ["ASC, no control flow (Table 4 config)", round(data["auth-nocf"]),
         f"+{data['auth-nocf'] - data['plain']:.0f}"],
        ["ASC, full policies (Table 6 config)", round(data["auth-cf"]),
         f"+{data['auth-cf'] - data['plain']:.0f}"],
        ["ASC + capability tracking (§5.3)", round(data["auth-cap"]),
         f"+{data['auth-cap'] - data['plain']:.0f}"],
        ["ASC + unique block ids (§5.5)", round(data["auth-progid"]),
         f"+{data['auth-progid'] - data['plain']:.0f}"],
        ["ASC, 5x slower MAC", round(data["auth-cf-slowmac"]),
         f"+{data['auth-cf-slowmac'] - data['plain']:.0f}"],
        ["Systrace-style user-space daemon", round(data["systrace-daemon"]),
         f"+{data['systrace-daemon'] - data['plain']:.0f}"],
    ]
    ablation_table = format_table(
        ["configuration", "cycles/getpid", "surcharge"],
        rows,
        title=f"Ablations: per-call checking cost ({iterations} calls)",
    )

    # §5.1 proof hints: kernel-side verification work vs searching.
    pattern = Pattern.parse("/tmp/{alpha,beta,gamma}*{log,dat}")
    argument = b"/tmp/gammaXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXlog"
    hint = derive_hint(pattern, argument)
    import timeit

    verify_time = timeit.timeit(
        lambda: match_with_hint(pattern, argument, hint), number=2000
    )
    search_time = timeit.timeit(
        lambda: derive_hint(pattern, argument), number=2000
    )
    pattern_table = format_table(
        ["operation", "relative cost"],
        [
            ["kernel verifies with proof hint", "1.0x"],
            ["kernel searches without hint",
             f"{search_time / verify_time:.1f}x"],
        ],
        title="§5.1 proof-hint pattern matching (host-time ratio)",
    )
    report("extensions_ablations", ablation_table + "\n\n" + pattern_table)

    # Shape assertions.
    assert data["plain"] < data["auth-nocf"] < data["auth-cf"]
    assert data["auth-cf"] <= data["auth-cap"]
    # The Frankenstein defense is free at runtime.
    assert abs(data["auth-progid"] - data["auth-cf"]) < 2
    assert data["auth-cf-slowmac"] > data["auth-cf"]
    # The §2.3 claim: in-kernel checking beats the user-space daemon.
    assert data["auth-cf"] < data["systrace-daemon"]
    assert search_time > verify_time
