"""Table 4: per-system-call cost of authentication.

Methodology mirrors §4.3: each system call is executed 10,000 times in
a tight guest loop; the cycle counter is read with ``rdtsc`` before and
after; the measurement overhead (rdtsc cost 84, loop cost 4) is
reported alongside, and the authenticated binaries are installed
*without* control flow policies, exactly as the paper measured them.

Each authenticated call is measured twice: cold (``fastpath=False``,
every trap pays the full CMAC — the paper's configuration) and cached
(the default kernel, where the per-site verification cache turns the
steady-state check into a bytes compare).  Both columns are archived so
regressions in either mode are visible.
"""

import pytest

from repro.analysis import format_table
from repro.asm import assemble
from repro.binfmt import link
from repro.installer import InstallerOptions, install
from repro.kernel import Kernel
from repro.workloads.runtime import runtime_source
from benchmarks.conftest import BENCH_KEY, bench_scale

#: Paper's Table 4 (cycles).
PAPER = {
    "getpid()": (1141, 5045),
    "gettimeofday()": (1395, 5703),
    "read(4096)": (7324, 10013),
    "write(4096)": (39479, 40396),
    "brk()": (1155, 5083),
}

RDTSC_COST = 84
LOOP_COST = 4


def _program(syscall: str, iterations: int) -> str:
    setup = {
        "getpid": "",
        "gettimeofday": "",
        "brk": "",
        "read": """
    li r1, path
    li r2, 0x42      ; O_RDWR|O_CREAT
    call sys_open
    mov r14, r0
    mov r1, r14
    li r2, iobuf
    li r3, 4096
    call sys_write
    mov r1, r14
    li r2, 0
    li r3, 0
    call sys_lseek
""",
        "write": """
    li r1, path
    li r2, 0x42      ; O_RDWR|O_CREAT
    call sys_open
    mov r14, r0
""",
    }[syscall]
    args = {
        "getpid": "",
        "gettimeofday": "    li r1, tv\n    li r2, 0\n",
        "brk": "    li r1, 0\n",
        "read": "    mov r1, r14\n    li r2, iobuf\n    li r3, 4096\n",
        "write": "    mov r1, r14\n    li r2, iobuf\n    li r3, 4096\n",
    }[syscall]
    reset = (
        "    mov r1, r14\n    li r2, 0\n    li r3, 0\n    call sys_lseek\n"
        if syscall in ("read", "write")
        else ""
    )
    stubs = {"getpid": ("getpid",), "gettimeofday": ("gettimeofday",),
             "brk": ("brk",), "read": ("open", "write", "read", "lseek"),
             "write": ("open", "read", "write", "lseek")}[syscall]
    return f"""
.section .text
.global _start
_start:
{setup}
    li r13, {iterations}
    rdtsc r11
    li r9, cells
    st r11, [r9+0]
loop:
{args}    call sys_{syscall}
{reset}    subi r13, r13, 1
    cmpi r13, 0
    bgt loop
    rdtsc r12
    li r9, cells
    st r12, [r9+4]
    li r1, 0
    call sys_exit
.section .rodata
path:
    .asciz "/tmp/bench.dat"
.section .bss
cells:
    .space 8
tv:
    .space 8
iobuf:
    .space 4096
""" + runtime_source("linux", stubs + ("exit",))


def _measure(
    syscall: str, authenticated: bool, iterations: int, fastpath: bool = True
) -> float:
    binary = assemble(
        _program(syscall, iterations), metadata={"program": f"micro-{syscall}"}
    )
    if authenticated:
        # Table 4 measures authenticated calls *without* control flow.
        binary = install(
            binary, BENCH_KEY, InstallerOptions(control_flow=False)
        ).binary
    kernel = Kernel(key=BENCH_KEY, fastpath=fastpath)
    result = kernel.run(binary, max_instructions=200_000_000)
    assert result.ok, result.kill_reason
    # Read the fast-path counters through the reset snapshot: reset()
    # returns the pre-reset values as one immutable triple, so phases
    # measured back to back can't race a bare reset against the next
    # phase's accumulation.
    fastpath_stats = kernel.audit.fastpath.reset()
    if authenticated and fastpath:
        assert fastpath_stats.hits > 0, f"{syscall}: per-site cache never warmed"
    else:
        assert fastpath_stats.lookups == 0, (syscall, fastpath_stats)
    image = link(binary)
    cells = image.address_of("cells")
    start = result.vm.memory.read_u32(cells, force=True)
    end = result.vm.memory.read_u32(cells + 4, force=True)
    total = (end - start) & 0xFFFFFFFF
    per_call = (total - RDTSC_COST) / iterations - LOOP_COST
    # The reset lseek in read/write loops is measurement scaffolding.
    if syscall in ("read", "write"):
        per_call -= _lseek_sequence_cost(authenticated, fastpath)
    # Subtract the invocation scaffolding so the number is the bare
    # system call, as in the paper: the unauthenticated loop calls a
    # stub (CALL+LI+RET = 11 cycles); in the installed binary the stub
    # has been inlined (LI r0 + LI r7 = 2 cycles); plus one cycle per
    # argument-staging instruction.
    n_args = {"getpid": 0, "gettimeofday": 2, "brk": 1, "read": 3, "write": 3}[syscall]
    per_call -= (2 if authenticated else 11) + n_args
    return per_call


_LSEEK_CACHE = {}


def _lseek_sequence_cost(authenticated: bool, fastpath: bool = True) -> float:
    """Cost of the `li;li;li;call lseek...` reset sequence, measured
    with the same machinery so subtraction is exact."""
    key = (authenticated, fastpath)
    if key in _LSEEK_CACHE:
        return _LSEEK_CACHE[key]
    iterations = 200
    source = f"""
.section .text
.global _start
_start:
    li r1, path
    li r2, 0x42      ; O_RDWR|O_CREAT
    call sys_open
    mov r14, r0
    li r13, {iterations}
    rdtsc r11
    li r9, cells
    st r11, [r9+0]
loop:
    mov r1, r14
    li r2, 0
    li r3, 0
    call sys_lseek
    subi r13, r13, 1
    cmpi r13, 0
    bgt loop
    rdtsc r12
    li r9, cells
    st r12, [r9+4]
    li r1, 0
    call sys_exit
.section .rodata
path:
    .asciz "/tmp/bench.dat"
.section .bss
cells:
    .space 8
""" + runtime_source("linux", ("open", "lseek", "exit"))
    binary = assemble(source, metadata={"program": "micro-lseek"})
    if authenticated:
        binary = install(binary, BENCH_KEY, InstallerOptions(control_flow=False)).binary
    kernel = Kernel(key=BENCH_KEY, fastpath=fastpath)
    result = kernel.run(binary)
    assert result.ok
    image = link(binary)
    cells = image.address_of("cells")
    start = result.vm.memory.read_u32(cells, force=True)
    end = result.vm.memory.read_u32(cells + 4, force=True)
    per_call = ((end - start) & 0xFFFFFFFF) / iterations - LOOP_COST - RDTSC_COST / iterations
    _LSEEK_CACHE[key] = per_call
    return per_call


@pytest.mark.benchmark(group="table4")
def test_table4_microbenchmark(benchmark, report):
    iterations = max(100, int(10_000 * bench_scale()))
    rows = []

    def run_suite():
        measured = {}
        for label, syscall in (
            ("getpid()", "getpid"),
            ("gettimeofday()", "gettimeofday"),
            ("read(4096)", "read"),
            ("write(4096)", "write"),
            ("brk()", "brk"),
        ):
            original = _measure(syscall, False, iterations)
            cold = _measure(syscall, True, iterations, fastpath=False)
            fast = _measure(syscall, True, iterations, fastpath=True)
            measured[label] = (original, cold, fast)
        return measured

    measured = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    for label, (paper_orig, paper_auth) in PAPER.items():
        orig, cold, fast = measured[label]
        cold_overhead = 100.0 * (cold - orig) / orig
        fast_overhead = 100.0 * (fast - orig) / orig
        paper_overhead = 100.0 * (paper_auth - paper_orig) / paper_orig
        rows.append([
            label,
            paper_orig, round(orig),
            paper_auth, round(cold), round(fast),
            f"{paper_overhead:.1f}%", f"{cold_overhead:.1f}%",
            f"{fast_overhead:.1f}%",
        ])
    rows.append(["rdtsc cost", 84, RDTSC_COST, 84, RDTSC_COST, RDTSC_COST,
                 "-", "-", "-"])
    rows.append(["loop cost", 4, LOOP_COST, 4, LOOP_COST, LOOP_COST,
                 "-", "-", "-"])

    report(
        "table4_microbench",
        format_table(
            ["System Call", "orig(paper)", "orig(ours)", "auth(paper)",
             "auth(cold)", "auth(cached)", "ovh(paper)", "ovh(cold)",
             "ovh(cached)"],
            rows,
            title=f"Table 4: effect of authentication "
                  f"(cycles/call, {iterations} iterations; cold = "
                  f"--no-fastpath, cached = per-site verification cache)",
        ),
    )

    # Shape assertions: baseline calibration is exact; the *cold* check
    # (the paper's configuration) adds a roughly constant ~4k-cycle
    # surcharge, so cheap calls suffer large relative overhead and
    # expensive calls small.
    for label, (paper_orig, _) in PAPER.items():
        assert measured[label][0] == pytest.approx(paper_orig, rel=0.02)
    assert measured["getpid()"][1] - measured["getpid()"][0] > 3000
    getpid_ovh = measured["getpid()"][1] / measured["getpid()"][0]
    write_ovh = measured["write(4096)"][1] / measured["write(4096)"][0]
    assert getpid_ovh > 3.0
    assert write_ovh < 1.2

    # Fast-path assertions: once the per-site cache is warm, the
    # verification surcharge (auth minus baseline) must shrink by at
    # least 3x for the calls whose cost is dominated by the check, and
    # the cached call must still cost more than the unauthenticated one
    # (string MACs and fixed trap work are never cached away).
    for label in ("getpid()", "gettimeofday()", "brk()"):
        orig, cold, fast = measured[label]
        assert fast > orig, f"{label}: cached auth cheaper than baseline"
        speedup = (cold - orig) / (fast - orig)
        assert speedup >= 3.0, (
            f"{label}: verification surcharge speedup {speedup:.2f}x < 3x "
            f"(orig={orig:.0f}, cold={cold:.0f}, cached={fast:.0f})"
        )
