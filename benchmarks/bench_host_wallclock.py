"""Host wall-clock throughput: interpreter vs threaded engine vs
threaded engine with direct block chaining.

Every other benchmark in this suite measures *simulated* cycles, which
are engine-invariant by construction.  This one measures what the
tentpole optimisations actually buy: real host instructions/second for
the execution engine configurations on three CPU-bound macro
workloads.  It also re-checks the engines' bit-identity contract on
the exact binaries it times (same cycles, instructions, syscalls, exit
status) — across the interpreter, the plain threaded engine, the
chained threaded engine, and a run under the preemptive scheduler.

Columns:

- ``interp`` — the reference interpreter.
- ``threaded`` — per-block dispatch, chaining disabled (``chain=False``,
  i.e. the PR 2 engine).  Kept as its own column so the chaining
  speedup is measured against a stable baseline.
- ``threaded_chained`` — direct block chaining + superblock fusion
  (the default engine configuration).
- ``threaded_sched`` — the chained engine under the preemptive
  scheduler with a generous timeslice (sched-parity gate).

Results are archived twice: the human-readable table under
``benchmarks/results/`` like every other bench, and a machine-readable
``BENCH_host_wallclock.json`` at the repo root that seeds the repo's
host-performance trajectory (later optimisation PRs append comparable
numbers).

Knobs:

- ``REPRO_BENCH_SCALE`` shrinks the workload iteration counts like the
  other macro benches.
- ``REPRO_WALLCLOCK_WORKLOADS`` (comma-separated names) restricts the
  workload list — the CI smoke job times only ``gzip-spec``.

The speedup gates are enforced at full scale; scaled-down smoke runs
only require that a faster configuration is never *slower* than
the interpreter (tiny workloads are dominated by load/install time,
not execution).
"""

import gc
import json
import os
import pathlib
import time

import pytest

from repro.analysis import format_table
from repro.installer import install
from repro.kernel import Kernel
from repro.obs import TraceRecorder
from repro.workloads.spec import SPEC_PROGRAMS, build_spec_program
from benchmarks.conftest import BENCH_KEY, bench_scale

WORKLOADS = ("gzip-spec", "crafty", "twolf")

JSON_PATH = pathlib.Path(__file__).parent.parent / "BENCH_host_wallclock.json"

#: PR 2 acceptance gate: guest instructions/sec under the plain
#: threaded engine must be at least this multiple of the interpreter's
#: (all workloads, full scale).
SPEEDUP_GATE = 3.0

#: PR 6 acceptance gates, measured on ``CHAIN_GATE_WORKLOAD`` at full
#: scale: the chained engine must beat the interpreter by
#: ``CHAINED_VS_INTERP_GATE`` and the plain threaded engine by
#: ``CHAINED_VS_THREADED_GATE``.
CHAIN_GATE_WORKLOAD = "gzip-spec"
CHAINED_VS_INTERP_GATE = 5.0
CHAINED_VS_THREADED_GATE = 1.3

#: The §3.4 verification stages (plus the verifier JIT's own compile
#: span): the share of traced time they consume is the per-syscall
#: verify surcharge the verifier specialization engine attacks.
VERIFY_STAGES = frozenset({
    "syscall-verify",
    "policy-decode",
    "mac-check",
    "string-auth",
    "memory-checker",
    "verifier-compile",
})

#: PR 7 acceptance gate: verify-stage share of traced time on
#: ``VERIFY_GATE_WORKLOAD``.  ``VERIFY_SHARE_PR6_BASELINE`` is the
#: share the PR 6 kernel recorded in BENCH_host_wallclock.json before
#: verifier specialization existed; the JIT must beat it by at least
#: ``VERIFY_SHARE_IMPROVEMENT_GATE``.
VERIFY_GATE_WORKLOAD = "gzip-spec"
VERIFY_SHARE_PR6_BASELINE = 0.4033
VERIFY_SHARE_IMPROVEMENT_GATE = 1.5


def _selected_workloads() -> tuple:
    override = os.environ.get("REPRO_WALLCLOCK_WORKLOADS")
    if not override:
        return WORKLOADS
    names = tuple(n.strip() for n in override.split(",") if n.strip())
    unknown = [n for n in names if n not in SPEC_PROGRAMS]
    assert not unknown, f"unknown workloads: {unknown}"
    return names


#: Timed repetitions per configuration; the *fastest* run is reported
#: (min-of-N).  Every gated number here is a ratio of two timings, so
#: single-shot measurements make the gates hostage to scheduler noise
#: on a shared host; min-of-N approximates the undisturbed time.
TIMING_REPEATS = int(os.environ.get("REPRO_WALLCLOCK_REPEATS", "3"))


def _best_of(run_once) -> dict:
    """Run ``run_once`` TIMING_REPEATS times, keep the fastest.

    The architecture results (instructions, cycles, syscalls, exit
    status) are deterministic and must agree across repeats — that is
    asserted, so a repeat can never mask a nondeterminism bug."""
    best = None
    for _ in range(max(1, TIMING_REPEATS)):
        # Collect garbage from previous runs *before* timing, so a GC
        # pause triggered by another configuration's allocations never
        # lands inside this one's measurement window.
        gc.collect()
        sample = run_once()
        if best is not None:
            for field in ("instructions", "cycles", "syscalls", "exit_status"):
                assert sample[field] == best[field], (field, sample, best)
        if best is None or sample["host_seconds"] < best["host_seconds"]:
            best = sample
    return best


def _time_run(name: str, engine: str, iterations: int, chain: bool) -> dict:
    binary = install(build_spec_program(name, iterations=iterations),
                     BENCH_KEY).binary

    def run_once() -> dict:
        kernel = Kernel(key=BENCH_KEY, engine=engine, chain=chain)
        start = time.perf_counter()
        result = kernel.run(binary, argv=[name], max_instructions=500_000_000)
        host_seconds = time.perf_counter() - start
        assert result.ok, (name, engine, chain, result.kill_reason)
        return {
            "host_seconds": host_seconds,
            "instructions": result.instructions,
            "cycles": result.cycles,
            "syscalls": result.syscalls,
            "exit_status": result.exit_status,
            "ips": result.instructions / host_seconds,
        }

    return _best_of(run_once)


def _time_run_sched(name: str, iterations: int) -> dict:
    """The same workload as a single process *under the preemptive
    scheduler* (chained threaded engine, generous timeslice): the
    scheduler must be near-free for single-process work — the
    sched-parity gate in check_wallclock_regression.py enforces it."""
    binary = install(build_spec_program(name, iterations=iterations),
                     BENCH_KEY).binary

    def run_once() -> dict:
        kernel = Kernel(key=BENCH_KEY, engine="threaded")
        start = time.perf_counter()
        multi = kernel.run_many(
            [(binary, [name], b"")],
            timeslice=1_000_000,
            max_instructions=500_000_000,
        )
        host_seconds = time.perf_counter() - start
        result = multi.results[0]
        assert result.ok, (name, "threaded_sched", result.kill_reason)
        return {
            "host_seconds": host_seconds,
            "instructions": result.instructions,
            "cycles": result.cycles,
            "syscalls": result.syscalls,
            "exit_status": result.exit_status,
            "ips": result.instructions / host_seconds,
        }

    return _best_of(run_once)


def _trace_stages(name: str, engine: str, iterations: int) -> dict:
    """One additional traced run: where the host time goes, decomposed
    into the verification stages of §3.4 plus the engine's own
    compile/chain/execute split (the paper's Tables 4-6 argument, but
    measured instead of asserted).  Untimed runs stay recorder-free so
    tracing overhead never pollutes the instr/sec numbers."""
    binary = install(build_spec_program(name, iterations=iterations),
                     BENCH_KEY).binary
    recorder = TraceRecorder()
    kernel = Kernel(key=BENCH_KEY, engine=engine, recorder=recorder)
    result = kernel.run(binary, argv=[name], max_instructions=500_000_000)
    assert result.ok, (name, engine, result.kill_reason)
    totals = recorder.stage_totals()
    traced_ns = recorder.total_traced_ns()
    # Self times partition the root span by construction; the trace is
    # only trustworthy if they add back up (within float/accounting
    # noise far below the 5% acceptance bound).
    self_sum = sum(entry["self_ns"] for entry in totals.values())
    assert traced_ns and abs(self_sum - traced_ns) <= 0.05 * traced_ns
    verify_self_ns = sum(
        entry["self_ns"]
        for stage, entry in totals.items()
        if stage in VERIFY_STAGES
    )
    return {
        "traced_seconds": round(traced_ns / 1e9, 4),
        # First-class verify surcharge: the fraction of traced host
        # time spent in verification stages (gated by
        # check_wallclock_regression.py on the gate workload).
        "verify_share": round(verify_self_ns / traced_ns, 4),
        "stages": {
            stage: {
                "count": entry["count"],
                "total_seconds": round(entry["total_ns"] / 1e9, 6),
                "self_seconds": round(entry["self_ns"] / 1e9, 6),
            }
            for stage, entry in sorted(totals.items())
        },
        "counters": dict(sorted(recorder.counters.items())),
    }


@pytest.mark.benchmark(group="host_wallclock")
def test_host_wallclock(benchmark, report):
    scale = bench_scale()
    workloads = _selected_workloads()

    def run_suite():
        measured = {}
        for name in workloads:
            planned, _ = SPEC_PROGRAMS[name].plan()
            iterations = max(2, int(planned * scale))
            measured[name] = {
                "interp": _time_run(name, "interp", iterations, chain=True),
                "threaded": _time_run(name, "threaded", iterations,
                                      chain=False),
                "threaded_chained": _time_run(name, "threaded", iterations,
                                              chain=True),
                "threaded_sched": _time_run_sched(name, iterations),
                "iterations": iterations,
            }
        return measured

    measured = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    rows = []
    payload = {
        "benchmark": "host_wallclock",
        "scale": scale,
        "speedup_gate": SPEEDUP_GATE,
        "chained_vs_interp_gate": CHAINED_VS_INTERP_GATE,
        "chained_vs_threaded_gate": CHAINED_VS_THREADED_GATE,
        "chain_gate_workload": CHAIN_GATE_WORKLOAD,
        "verify_gate_workload": VERIFY_GATE_WORKLOAD,
        "verify_share_pr6_baseline": VERIFY_SHARE_PR6_BASELINE,
        "verify_share_improvement_gate": VERIFY_SHARE_IMPROVEMENT_GATE,
        "workloads": {},
    }
    for name in workloads:
        interp = measured[name]["interp"]
        threaded = measured[name]["threaded"]
        chained = measured[name]["threaded_chained"]
        sched = measured[name]["threaded_sched"]
        speedup = threaded["ips"] / interp["ips"]
        chained_speedup = chained["ips"] / interp["ips"]
        chain_gain = chained["ips"] / threaded["ips"]
        sched_parity = sched["ips"] / chained["ips"]

        # Bit-identity on the timed binaries: wall clock may differ,
        # architecture must not — including with chaining and under
        # the scheduler.
        for field in ("instructions", "cycles", "syscalls", "exit_status"):
            assert interp[field] == threaded[field], (name, field)
            assert interp[field] == chained[field], (name, "chained", field)
            assert interp[field] == sched[field], (name, "sched", field)

        observability = _trace_stages(
            name, "threaded", measured[name]["iterations"]
        )
        verify_share = observability["verify_share"]

        rows.append([
            name,
            measured[name]["iterations"],
            interp["instructions"],
            f"{interp['ips'] / 1e3:.0f}k",
            f"{threaded['ips'] / 1e3:.0f}k",
            f"{chained['ips'] / 1e3:.0f}k",
            f"{speedup:.2f}x",
            f"{chained_speedup:.2f}x",
            f"{chain_gain:.2f}x",
            f"{sched_parity:.2f}x",
            f"{verify_share:.1%}",
        ])
        payload["workloads"][name] = {
            "iterations": measured[name]["iterations"],
            "guest_instructions": interp["instructions"],
            "interp": {
                "host_seconds": round(interp["host_seconds"], 4),
                "instructions_per_second": round(interp["ips"]),
            },
            "threaded": {
                "host_seconds": round(threaded["host_seconds"], 4),
                "instructions_per_second": round(threaded["ips"]),
            },
            "threaded_chained": {
                "host_seconds": round(chained["host_seconds"], 4),
                "instructions_per_second": round(chained["ips"]),
            },
            "threaded_sched": {
                "host_seconds": round(sched["host_seconds"], 4),
                "instructions_per_second": round(sched["ips"]),
            },
            "speedup": round(speedup, 2),
            "chained_speedup": round(chained_speedup, 2),
            "chain_gain": round(chain_gain, 2),
            "sched_parity": round(sched_parity, 3),
            "verify_share": verify_share,
            "observability": observability,
        }

        # The gates: never slower than the interpreter; the full-scale
        # ratios are enforced per workload / per column.
        assert speedup >= 1.0, (name, "threaded", speedup)
        assert chained_speedup >= 1.0, (name, "threaded_chained",
                                        chained_speedup)
        if scale >= 1.0:
            assert speedup >= SPEEDUP_GATE, (name, "threaded", speedup)
            if name == CHAIN_GATE_WORKLOAD:
                assert chained_speedup >= CHAINED_VS_INTERP_GATE, (
                    name, "threaded_chained vs interp", chained_speedup)
                assert chain_gain >= CHAINED_VS_THREADED_GATE, (
                    name, "threaded_chained vs threaded", chain_gain)
            if name == VERIFY_GATE_WORKLOAD:
                ceiling = (
                    VERIFY_SHARE_PR6_BASELINE / VERIFY_SHARE_IMPROVEMENT_GATE
                )
                assert verify_share <= ceiling, (
                    name, "verify share vs PR 6 baseline",
                    verify_share, ceiling)

    table = format_table(
        ["Workload", "Iterations", "Guest instrs",
         "interp instr/s", "threaded instr/s", "chained instr/s",
         "Thr/interp", "Chain/interp", "Chain/thr", "Sched parity",
         "Verify share"],
        rows,
        title="Host wall-clock throughput: translation cache and "
              "direct block chaining vs reference interpreter "
              f"(scale={scale}; full-scale gates: threaded>="
              f"{SPEEDUP_GATE}x interp, chained>="
              f"{CHAINED_VS_INTERP_GATE}x interp and >="
              f"{CHAINED_VS_THREADED_GATE}x threaded on "
              f"{CHAIN_GATE_WORKLOAD}; sched parity = single process "
              "under the scheduler vs chained; verify share = "
              "verification-stage self time / traced time, gated <= "
              f"{VERIFY_SHARE_PR6_BASELINE}/"
              f"{VERIFY_SHARE_IMPROVEMENT_GATE} on "
              f"{VERIFY_GATE_WORKLOAD})",
    )
    report("host_wallclock", table)

    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
