"""Fault-injection detection coverage as a regression bench.

A reduced seeded sweep (scaled via ``REPRO_BENCH_SCALE``) across all
five engine configurations; the bench reports the per-kind and
per-config coverage table and asserts the battery's contract — zero
MISSED faults, identical detection counts on every configuration.  The
full-volume run is the CI ``faults-battery`` job; this keeps coverage
visible in the benchmark archive alongside the perf numbers.
"""

import pytest

from repro.analysis import format_table
from repro.faults import run_sweep
from repro.faults.sweep import OUTCOMES
from benchmarks.conftest import BENCH_KEY, bench_scale

SEED = 20050926
BASE_COUNT = 100


@pytest.mark.benchmark(group="faults")
def test_fault_coverage_battery(benchmark, report):
    count = max(len(OUTCOMES) * 10, int(BASE_COUNT * bench_scale()))

    sweep = benchmark.pedantic(
        lambda: run_sweep(key=BENCH_KEY, seed=SEED, count=count),
        rounds=1, iterations=1,
    )

    rows = [
        [kind,
         counts["detected"], counts["benign"], counts["missed"]]
        for kind, counts in sorted(sweep.by_kind.items())
    ]
    rows.append(["TOTAL", sweep.totals["detected"], sweep.totals["benign"],
                 sweep.totals["missed"]])
    report(
        "fault_coverage",
        format_table(
            ["fault kind", "detected", "benign", "MISSED"],
            rows,
            title=f"fault-injection coverage (seed {SEED}, "
                  f"{count} plans x {len(sweep.configs)} configs)",
        ),
    )

    assert sweep.ok, sweep.summary()
    assert sweep.totals["missed"] == 0
    assert sweep.totals["injected"] == count * len(sweep.configs)
    # Detection is engine-independent: every config classifies the same
    # plans the same way.
    per_config = list(sweep.by_config.values())
    assert all(row == per_config[0] for row in per_config)
