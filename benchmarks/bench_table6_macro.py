"""Tables 5 and 6: whole-program overhead of authenticated calls.

Each program in the Table 5 suite runs three times — as a
PLTO-processed unauthenticated binary (the paper's baseline), as a
fully installed binary on a ``--no-fastpath`` kernel (every trap pays
the full CMAC — the paper's configuration, compared against Table 6),
and as the same installed binary on the default kernel where the
per-site verification cache absorbs the steady-state call-MAC work.

Times are reported in scaled seconds (2.4e6 cycles per second; see
repro.workloads.spec).  The runs are deterministic, so the paper's
std-dev columns are identically zero here.
"""

import pytest

from repro.analysis import format_table
from repro.installer import install
from repro.kernel import Kernel
from repro.plto import disassemble, reassemble, run_baseline_passes
from repro.workloads.spec import (
    CYCLES_PER_SCALED_SECOND,
    SPEC_PROGRAMS,
    build_spec_program,
)
from benchmarks.conftest import BENCH_KEY, bench_scale

#: Table 6 (paper): name -> (orig secs, auth secs, overhead %).
PAPER = {
    "gzip-spec": (152.48, 154.63, 1.41),
    "crafty": (107.60, 109.11, 1.40),
    "mcf": (237.48, 239.21, 0.73),
    "vpr": (17.29, 17.49, 1.16),
    "twolf": (391.04, 397.67, 1.70),
    "gcc": (93.01, 94.30, 1.39),
    "vortex": (164.15, 165.53, 0.84),
    "pyramid": (1.01, 1.09, 7.92),
    "gzip": (2.83, 2.86, 1.06),
}


def _baseline(binary):
    unit = disassemble(binary)
    run_baseline_passes(unit)
    return reassemble(unit)


def _run_program(
    name: str, authenticated: bool, iterations: int, fastpath: bool = True
) -> float:
    binary = build_spec_program(name, iterations=iterations)
    if authenticated:
        binary = install(binary, BENCH_KEY).binary
    else:
        binary = _baseline(binary)
    kernel = Kernel(key=BENCH_KEY, fastpath=fastpath)
    result = kernel.run(binary, argv=[name], max_instructions=500_000_000)
    assert result.ok, (name, result.kill_reason)
    return result.cycles


@pytest.mark.benchmark(group="table6")
def test_table5_table6_macro(benchmark, report):
    scale = bench_scale()

    def run_suite():
        measured = {}
        for name, program in SPEC_PROGRAMS.items():
            planned, _ = program.plan()
            iterations = max(2, int(planned * scale))
            base = _run_program(name, False, iterations)
            cold = _run_program(name, True, iterations, fastpath=False)
            fast = _run_program(name, True, iterations, fastpath=True)
            measured[name] = (base, cold, fast, iterations)
        return measured

    measured = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    # Table 5: the suite.
    suite_rows = [
        [name, program.kind, program.description]
        for name, program in SPEC_PROGRAMS.items()
    ]
    table5 = format_table(
        ["Program Name", "Type", "Description"], suite_rows,
        title="Table 5: benchmark suite",
    )

    # Table 6: overheads.
    rows = []
    for name, (paper_orig, paper_auth, paper_ovh) in PAPER.items():
        base, cold, fast, iterations = measured[name]
        base_secs = base / CYCLES_PER_SCALED_SECOND / scale
        cold_secs = cold / CYCLES_PER_SCALED_SECOND / scale
        fast_secs = fast / CYCLES_PER_SCALED_SECOND / scale
        cold_overhead = 100.0 * (cold - base) / base
        fast_overhead = 100.0 * (fast - base) / base
        rows.append([
            name,
            paper_orig, round(base_secs, 2),
            paper_auth, round(cold_secs, 2), round(fast_secs, 2),
            f"{paper_ovh:.2f}%", f"{cold_overhead:.2f}%",
            f"{fast_overhead:.2f}%",
        ])
    table6 = format_table(
        ["Program", "orig(paper)", "orig(ours)", "auth(paper)",
         "auth(cold)", "auth(cached)", "ovh(paper)", "ovh(cold)",
         "ovh(cached)"],
        rows,
        title="Table 6: performance overhead (scaled seconds; cold = "
              "--no-fastpath, cached = per-site verification cache; "
              "deterministic, std.dev = 0)",
    )
    report("table5_table6_macro", table5 + "\n\n" + table6)

    # Shape assertions against the *cold* run (the paper's
    # configuration): overheads are modest (< 12%), pyramid is the
    # clear outlier exactly as in the paper, and CPU-bound programs sit
    # in the ~1-2% band.
    overheads = {
        name: 100.0 * (cold - base) / base
        for name, (base, cold, _, _) in measured.items()
    }
    assert max(overheads.values()) == overheads["pyramid"]
    assert overheads["pyramid"] > 3 * overheads["mcf"]
    for name, value in overheads.items():
        if name != "pyramid":
            assert value < 5.0, (name, value)
        assert value > 0.1
    # Within a factor-of-two band of the paper's per-program overheads.
    for name, (_, _, paper_ovh) in PAPER.items():
        assert overheads[name] == pytest.approx(paper_ovh, rel=1.0), name

    # Fast path: caching must never be a pessimization anywhere, and
    # for the syscall-heavy outlier it must recover a meaningful slice
    # of the authentication overhead.  The macro suite installs *with*
    # control flow, whose counter-dependent state MACs are uncacheable
    # by construction (DESIGN.md), so unlike Table 4's >=3x surcharge
    # reduction the recoverable fraction here is bounded by the
    # call-MAC share of the per-trap cost.
    for name, (base, cold, fast, _) in measured.items():
        assert fast <= cold, (name, base, cold, fast)
        assert fast > base, (name, base, cold, fast)
    base, cold, fast, _ = measured["pyramid"]
    recovered = (cold - fast) / (cold - base)
    assert recovered >= 0.2, (base, cold, fast, recovered)
