"""Table 2: per-syscall comparison of ASC vs Systrace policies (bison).

The four published phenomena, each reproduced mechanically:

1. ``__syscall`` is ASC-only — the OpenBSD mmap stub indirects through
   it, and static analysis (correctly) constrains the indirection while
   Systrace records the resolved mmap;
2. ``close`` is Systrace-only — the OpenBSD implementation defeats the
   disassembler (reported and omitted) but is observed at runtime;
3. a block of rare-path calls is ASC-only — training never saw them;
4. ``mkdir``/``readlink``/``rmdir``/``unlink`` are Systrace-only via
   the fsread/fswrite hand-edit aliases (unneeded calls).
"""

import pytest

from repro.analysis import format_table
from repro.installer import generate_policy_only
from repro.monitor import train_policy
from repro.workloads import build_profile_program

#: Table 2 (paper): syscall -> (in ASC?, in Systrace?, via alias note).
PAPER_ROWS = {
    "__syscall": ("yes", "NO"),
    "close": ("NO", "yes"),
    "fcntl": ("yes", "NO"),
    "fstatfs": ("yes", "NO"),
    "getdirentries": ("yes", "NO"),
    "getpid": ("yes", "NO"),
    "gettimeofday": ("yes", "NO"),
    "kill": ("yes", "NO"),
    "madvise": ("yes", "NO"),
    "mkdir": ("NO", "yes (fswrite)"),
    "mmap": ("NO", "yes"),
    "nanosleep": ("yes", "NO"),
    "readlink": ("NO", "yes (fsread)"),
    "rmdir": ("NO", "yes (fswrite)"),
    "sendto": ("yes", "NO"),
    "sigaction": ("yes", "NO"),
    "socket": ("yes", "NO"),
    "sysconf": ("yes", "NO"),
    "uname": ("yes", "NO"),
    "unlink": ("NO", "yes (fswrite)"),
    "writev": ("yes", "NO"),
}


def _measure():
    binary = build_profile_program("bison", "openbsd")
    asc = generate_policy_only(binary).distinct_syscalls()
    systrace = train_policy(
        build_profile_program("bison", "openbsd"),
        training_argvs=[["bison"], ["bison", "train"]],
    )
    return asc, systrace


@pytest.mark.benchmark(group="table2")
def test_table2_bison_policy_diff(benchmark, report):
    asc, systrace = benchmark.pedantic(_measure, rounds=1, iterations=1)

    rows = []
    for name in sorted(asc | systrace.allowed):
        in_asc = name in asc
        in_st = name in systrace.allowed
        if in_asc == in_st:
            continue
        alias = " (alias)" if name in systrace.via_alias else ""
        paper = PAPER_ROWS.get(name, ("?", "?"))
        rows.append([
            name,
            paper[0], "yes" if in_asc else "NO",
            paper[1], ("yes" + alias) if in_st else "NO",
        ])
    report(
        "table2_bison_diff",
        format_table(
            ["System call", "ASC (paper)", "ASC (ours)",
             "Systrace (paper)", "Systrace (ours)"],
            rows,
            title="Table 2: comparison of policies for bison (OpenBSD)",
        ),
    )

    # The four published phenomena must reproduce exactly.
    assert "__syscall" in asc and "__syscall" not in systrace.allowed
    assert "close" not in asc and "close" in systrace.allowed
    assert "mmap" not in asc and "mmap" in systrace.allowed
    for alias_only in ("mkdir", "readlink", "rmdir", "unlink"):
        assert alias_only not in asc
        assert alias_only in systrace.via_alias
    # The rare-path block is ASC-only.
    for rare in ("fcntl", "getdirentries", "getpid", "gettimeofday", "kill",
                 "madvise", "nanosleep", "sendto", "sigaction", "socket",
                 "sysconf", "uname", "writev", "fstatfs"):
        assert rare in asc, rare
        assert rare not in systrace.allowed, rare

    # Agreement with the published table, row by row, for rows we model.
    matches = 0
    for name, (paper_asc, paper_st) in PAPER_ROWS.items():
        ours_asc = "yes" if name in asc else "NO"
        ours_st = "yes" if name in systrace.allowed else "NO"
        if ours_asc == paper_asc and ours_st == paper_st.split()[0]:
            matches += 1
    assert matches >= 19, f"only {matches}/21 Table 2 rows reproduced"
