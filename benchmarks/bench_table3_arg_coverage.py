"""Table 3: argument coverage of the static analysis.

Each profile program is pushed through the real analysis pipeline and
the seven published columns are measured: call sites, distinct calls,
total arguments, output-only arguments, statically authenticated
arguments, multi-value arguments, and fd-provenance arguments.
"""

import pytest

from repro.analysis import format_table
from repro.installer import generate_policy_only
from repro.workloads import build_profile_program
from repro.workloads.profiles import PROFILE_PROGRAMS


def _measure():
    return {
        name: generate_policy_only(
            build_profile_program(name, "linux")
        ).coverage_row()
        for name in ("bison", "calc", "screen", "tar")
    }


@pytest.mark.benchmark(group="table3")
def test_table3_argument_coverage(benchmark, report):
    measured = benchmark.pedantic(_measure, rounds=1, iterations=1)

    headers = ["prog", "sites", "calls", "args", "o/p", "auth", "mv", "fds"]
    rows = []
    for name in ("bison", "calc", "screen", "tar"):
        target = PROFILE_PROGRAMS[name].target
        row = measured[name]
        rows.append([
            f"{name} (paper)", target.sites, target.calls, target.args,
            target.outputs, target.auth, target.mv, target.fds,
        ])
        rows.append([
            f"{name} (ours)", row["sites"], row["calls"], row["args"],
            row["o/p"], row["auth"], row["mv"], row["fds"],
        ])
    report(
        "table3_arg_coverage",
        format_table(headers, rows, title="Table 3: argument coverage"),
    )

    # Exact reproduction of every cell.
    for name in measured:
        target = PROFILE_PROGRAMS[name].target
        row = measured[name]
        assert row == {
            "sites": target.sites, "calls": target.calls,
            "args": target.args, "o/p": target.outputs,
            "auth": target.auth, "mv": target.mv, "fds": target.fds,
        }, name

    # The paper's headline: 30-40% of arguments are protected by the
    # basic approach.
    for name, row in measured.items():
        fraction = row["auth"] / row["args"]
        assert 0.25 <= fraction <= 0.45, (name, fraction)
