"""§4.3's multiprogram (Andrew-like) benchmark.

Runs the full mini-tool pipeline — file creation, directory creation,
compression, archival, permission checking, moving, deleting, sorting —
with original and with authenticated binaries, and compares the
overhead with the paper's +0.96% (259.66s -> 262.14s, std devs
1.24/2.12, ~12,000 syscalls per iteration).
"""

import pytest

from repro.analysis import format_table
from repro.workloads import AndrewBenchmark
from benchmarks.conftest import BENCH_KEY, bench_scale

PAPER = {
    "original_secs": 259.66,
    "original_std": 1.24,
    "authenticated_secs": 262.14,
    "authenticated_std": 2.12,
    "overhead_pct": 0.96,
    "syscalls_per_iteration": 12000,
}


@pytest.mark.benchmark(group="andrew")
def test_andrew_multiprogram(benchmark, report):
    scale = bench_scale()
    files = max(4, int(32 * scale))

    def run_both():
        original = AndrewBenchmark(
            key=BENCH_KEY, authenticated=False, files_per_iteration=files
        ).run()
        authenticated = AndrewBenchmark(
            key=BENCH_KEY, authenticated=True, files_per_iteration=files
        ).run()
        return original, authenticated

    original, authenticated = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert not original.failures, original.failures
    assert not authenticated.failures, authenticated.failures

    overhead = 100.0 * (authenticated.cycles - original.cycles) / original.cycles
    rows = [
        ["execution time (s)", f"{PAPER['original_secs']:.2f}",
         f"{original.seconds_scaled:.2f}",
         f"{PAPER['authenticated_secs']:.2f}",
         f"{authenticated.seconds_scaled:.2f}"],
        ["std deviation", f"{PAPER['original_std']:.2f}", "0.00 (deterministic)",
         f"{PAPER['authenticated_std']:.2f}", "0.00 (deterministic)"],
        ["overhead", "-", "-", f"{PAPER['overhead_pct']:.2f}%", f"{overhead:.2f}%"],
        ["syscalls/iteration", "~12000", str(original.syscalls),
         "~12000", str(authenticated.syscalls)],
        ["tool processes", "-", str(original.processes),
         "-", str(authenticated.processes)],
    ]
    report(
        "andrew_multiprogram",
        format_table(
            ["metric", "orig (paper)", "orig (ours)",
             "auth (paper)", "auth (ours)"],
            rows,
            title=f"Andrew-like multiprogram benchmark "
                  f"({files} files/iteration; workload scaled vs paper)",
        ),
    )

    # Shape: identical syscall counts, small single-digit overhead in
    # the paper's ~1% band.
    assert original.syscalls == authenticated.syscalls
    assert 0.2 < overhead < 3.0, overhead
